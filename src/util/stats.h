// Statistics collection: running summaries, EWMAs, time-binned series.
//
// These are the measurement primitives behind every figure we regenerate:
// Figure 3 is a TimeSeries of normal-flow goodput; link utilization and
// mode-change latency reports use Summary and Ewma.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/types.h"

namespace fastflex {

/// Streaming summary: count / mean / variance (Welford) / min / max.
class Summary {
 public:
  void Add(double x);

  /// Folds another summary in (parallel Welford / Chan et al.).  Mean and
  /// variance are combined exactly up to floating-point association — the
  /// result can differ in low-order bits from a single-stream Add sequence,
  /// so Merge is reserved for sections exempt from byte-identity (the
  /// sharded engine merges per-shard profiler occupancy this way; replay-
  /// pinned summaries are rebuilt by replaying samples in canonical order).
  void Merge(const Summary& other);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  std::string ToString() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Exponentially weighted moving average with a configurable time constant.
/// Used for link-load monitoring in the LFA detector: util(t) decays toward
/// the instantaneous rate with time constant tau.
class Ewma {
 public:
  explicit Ewma(double tau_seconds = 0.1) : tau_(tau_seconds) {}

  /// Folds in a new sample observed at absolute time `now`.
  void Update(double sample, SimTime now);

  /// Value decayed to `now` without adding a sample.
  double ValueAt(SimTime now) const;

  double value() const { return value_; }
  bool has_value() const { return has_value_; }

 private:
  double tau_;
  double value_ = 0.0;
  SimTime last_ = 0;
  bool has_value_ = false;
};

/// Accumulates a quantity into fixed-width time bins; Rate() converts a bin
/// to per-second units.  This produces the x/y series for Figure 3.
class TimeSeries {
 public:
  explicit TimeSeries(SimTime bin_width = kSecond) : bin_width_(bin_width) {}

  void Add(SimTime t, double amount);

  /// Number of bins touched so far (bins are zero-filled up to the last).
  std::size_t NumBins() const { return bins_.size(); }

  /// Start time of bin i.
  SimTime BinStart(std::size_t i) const { return static_cast<SimTime>(i) * bin_width_; }

  /// Total accumulated in bin i (0 if untouched).
  double BinTotal(std::size_t i) const;

  /// Per-second rate for bin i.
  double Rate(std::size_t i) const;

  SimTime bin_width() const { return bin_width_; }

 private:
  SimTime bin_width_;
  std::vector<double> bins_;
};

/// Simple fixed-bucket histogram over [lo, hi); out-of-range values clamp to
/// the edge buckets.  Used for latency distributions in benches.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void Add(double x);
  double Percentile(double p) const;  // p in [0,100]
  std::size_t count() const { return count_; }

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t num_buckets() const { return buckets_.size(); }
  std::uint64_t bucket_count(std::size_t i) const {
    return i < buckets_.size() ? buckets_[i] : 0;
  }

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> buckets_;
  std::size_t count_ = 0;
};

}  // namespace fastflex
