// Core scalar types shared across all FastFlex libraries.
//
// Simulation time is an integer nanosecond count so that event ordering is
// exact and runs are reproducible bit-for-bit across platforms; floating
// point time would make tie-breaking depend on rounding.
#pragma once

#include <cstdint>
#include <string>

namespace fastflex {

/// Simulated time in nanoseconds since the start of the run.
using SimTime = std::int64_t;

constexpr SimTime kNanosecond = 1;
constexpr SimTime kMicrosecond = 1'000;
constexpr SimTime kMillisecond = 1'000'000;
constexpr SimTime kSecond = 1'000'000'000;

/// Converts a duration in (possibly fractional) seconds to SimTime.
constexpr SimTime FromSeconds(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kSecond));
}

/// Converts SimTime to fractional seconds (for reporting only).
constexpr double ToSeconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

constexpr SimTime FromMillis(double ms) {
  return static_cast<SimTime>(ms * static_cast<double>(kMillisecond));
}

constexpr double ToMillis(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

/// Identifies a node (host or switch) in the topology.
using NodeId = std::int32_t;
constexpr NodeId kInvalidNode = -1;

/// Identifies a simplex link.
using LinkId = std::int32_t;
constexpr LinkId kInvalidLink = -1;

/// Identifies an end-to-end flow.
using FlowId = std::int64_t;
constexpr FlowId kInvalidFlow = -1;

/// An IPv4-style address; hosts get unique addresses, switches get a
/// "router address" used in traceroute (ICMP time-exceeded) responses.
using Address = std::uint32_t;

/// Renders an address in dotted-quad form for logs and reports.
inline std::string AddressToString(Address a) {
  return std::to_string((a >> 24) & 0xff) + "." + std::to_string((a >> 16) & 0xff) +
         "." + std::to_string((a >> 8) & 0xff) + "." + std::to_string(a & 0xff);
}

}  // namespace fastflex
