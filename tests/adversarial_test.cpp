// Adaptive-adversary suite: each attacks::adaptive strategy must land
// against the pre-hardening deployment (Harden(false)) and die against the
// hardened default — the executable form of the holes the hardening pass
// closed.  Collision planning is additionally unit-tested against the raw
// sketch, and the probe MAC directly, so a scenario-level regression can be
// triaged to the right layer.
#include <gtest/gtest.h>

#include <cstdint>

#include "attacks/adaptive.h"
#include "dataplane/sketch.h"
#include "runtime/mode_protocol.h"
#include "scenarios/adversarial_fig.h"
#include "util/hash.h"

namespace fastflex {
namespace {

using attacks::adaptive::CollisionPlan;
using attacks::adaptive::PlanSketchCollisions;
using scenarios::AdversarialFigOptions;
using scenarios::AdversarialFigResult;
using scenarios::AdvStrategy;
using scenarios::RunAdversarialFig;

AdversarialFigResult RunStrategy(AdvStrategy strategy, bool hardened) {
  AdversarialFigOptions opt;
  opt.strategy = strategy;
  opt.hardened = hardened;
  opt.seed = 1;
  return RunAdversarialFig(opt);
}

// ---------------------------------------------------------------------------
// Unit layer: collision planning and the probe MAC
// ---------------------------------------------------------------------------

TEST(AdaptiveAdversary, CollisionPlanHitsEveryRowOfTheTargetedSketch) {
  const std::uint64_t seed = dataplane::CountMinSketch::kDefaultSeed;
  const std::size_t width = 512, depth = 3, per_row = 4;
  const Address target = 0xbeef01;
  const CollisionPlan plan = PlanSketchCollisions(seed, width, depth, target, per_row);
  ASSERT_EQ(plan.keys.size(), depth * per_row);
  ASSERT_EQ(plan.depth, depth);
  EXPECT_GT(plan.candidates_tested, plan.keys.size());

  // keys[i] collides with the target in row i % depth, by construction.
  for (std::size_t i = 0; i < plan.keys.size(); ++i) {
    const std::size_t row = i % depth;
    EXPECT_EQ(HashKey(plan.keys[i], seed + row) % width,
              HashKey(target, seed + row) % width)
        << "key " << i << " misses its row";
    EXPECT_NE(plan.keys[i], target);
  }

  // Against the sketch the plan was computed for, a round-robin walk
  // inflates the target's estimate by the full injected volume per row.
  dataplane::CountMinSketch planned(width, depth, seed);
  for (std::size_t i = 0; i < plan.keys.size(); ++i) planned.Update(plan.keys[i], 100);
  EXPECT_GE(planned.Estimate(target), 100 * per_row);

  // Against a salted sketch the same plan misses: the estimate (a row
  // minimum) stays at zero unless every row collides by accident.
  dataplane::CountMinSketch salted(width, depth, DeriveSalt(7, FnvHash("salted")));
  for (std::size_t i = 0; i < plan.keys.size(); ++i) salted.Update(plan.keys[i], 100);
  EXPECT_EQ(salted.Estimate(target), 0u);
}

TEST(AdaptiveAdversary, ProbeAuthTagKeyedAndPayloadBound) {
  sim::ProbePayload p;
  p.type = sim::ProbeType::kModeChange;
  p.mode_bit = dataplane::mode::kVolumetricFilter;
  p.activate = true;
  p.epoch = 42;
  p.origin = 3;
  const std::uint64_t tag = runtime::ProbeAuthTag(0x1234, p);
  EXPECT_NE(tag, 0u);                                   // 0 is "unauthenticated"
  EXPECT_EQ(tag, runtime::ProbeAuthTag(0x1234, p));     // deterministic
  EXPECT_NE(tag, runtime::ProbeAuthTag(0x1235, p));     // keyed
  sim::ProbePayload forged = p;
  forged.epoch = 1'000'000'000ULL;
  EXPECT_NE(tag, runtime::ProbeAuthTag(0x1234, forged));  // payload-bound
}

// ---------------------------------------------------------------------------
// Scenario layer: each strategy lands unhardened, dies hardened
// ---------------------------------------------------------------------------

TEST(AdaptiveAdversary, CollisionFloodFalseAlarmDiesWithSaltedSeeds) {
  const AdversarialFigResult un = RunStrategy(AdvStrategy::kCollisionFlood, false);
  const AdversarialFigResult hd = RunStrategy(AdvStrategy::kCollisionFlood, true);
  // Unhardened: a volumetric alarm with no real attack anywhere.
  EXPECT_GT(un.fp_frac, 0.3);
  EXPECT_GT(un.mode_flips, 0u);
  // Hardened: the pre-computed plan misses the salted sketch entirely.
  EXPECT_DOUBLE_EQ(hd.fp_frac, 0.0);
  EXPECT_EQ(hd.mode_flips, 0u);
  EXPECT_EQ(un.attack_packets, hd.attack_packets);  // same attacker effort
}

TEST(AdaptiveAdversary, ForgedProbesRejectedAndEpochDedupUnpoisoned) {
  const AdversarialFigResult un = RunStrategy(AdvStrategy::kModeForge, false);
  const AdversarialFigResult hd = RunStrategy(AdvStrategy::kModeForge, true);
  // Unhardened: the forged bit sticks fabric-wide AND the poisoned epochs
  // stop the later real flood's detection from propagating.
  EXPECT_GT(un.fp_frac, 0.5);
  EXPECT_FALSE(un.real_attack_detected);
  EXPECT_EQ(un.auth_rejects, 0u);
  // Hardened: every forged probe fails the MAC before touching any state,
  // so the real flood is detected fabric-wide on schedule.
  EXPECT_GT(hd.auth_rejects, 0u);
  EXPECT_DOUBLE_EQ(hd.fp_frac, 0.0);
  EXPECT_TRUE(hd.real_attack_detected);
  EXPECT_GE(hd.detect_at, 15 * kSecond);  // the flood starts at attack_at + 10 s
}

TEST(AdaptiveAdversary, CookieMintBoundedByPerSourcePolicing) {
  const AdversarialFigResult un = RunStrategy(AdvStrategy::kCookieMint, false);
  const AdversarialFigResult hd = RunStrategy(AdvStrategy::kCookieMint, true);
  // Unhardened: self-minted cookies saturate the connection filter and
  // legitimate sessions lose tracking (goodput collapse).
  EXPECT_GT(un.filter_load_max, 0.9);
  EXPECT_GT(un.filter_insert_failures, 0u);
  EXPECT_EQ(un.admissions_policed, 0u);
  // Hardened: the per-source token bucket refuses nearly the whole mint;
  // the filter keeps headroom and goodput recovers.
  EXPECT_GT(hd.admissions_policed, 100u);
  EXPECT_LT(hd.filter_load_max, 0.9);
  EXPECT_GT(hd.completed, un.completed);
}

// Satellite pin: the pulsing attacker must not flap modes once raise-side
// persistence is on.  Exact flip counts are pinned loosely (>= floor /
// == 0) so detector tuning can move without rewriting the test, while the
// flap-vs-no-flap contrast stays load-bearing.
TEST(AdaptiveAdversary, PulsingCannotFlapModesUnderRaisePersistence) {
  const AdversarialFigResult un = RunStrategy(AdvStrategy::kPulse, false);
  const AdversarialFigResult hd = RunStrategy(AdvStrategy::kPulse, true);
  // Unhardened (persist_checks = 1): every duty cycle raises and clears
  // across the fabric — at least one flap pair per on-path switch per pulse.
  EXPECT_GE(un.mode_flips, 20u);
  EXPECT_GT(un.fp_frac, 0.2);
  EXPECT_EQ(un.raises_suppressed, 0u);
  // Hardened (persist_checks = 2): zero raises; every single-window spike
  // is absorbed and counted.
  EXPECT_EQ(hd.mode_flips, 0u);
  EXPECT_GT(hd.raises_suppressed, 0u);
  EXPECT_DOUBLE_EQ(hd.fp_frac, 0.0);
  // Same pulse train in both arms.
  EXPECT_EQ(un.pulses_fired, hd.pulses_fired);
  EXPECT_EQ(un.attack_packets, hd.attack_packets);
}

}  // namespace
}  // namespace fastflex
