// Program-analyzer tests: equivalence, merging with sharing (Figure 1b),
// savings accounting, and weighted clustering.
#include <gtest/gtest.h>

#include "analyzer/analyzer.h"
#include "boosters/registry.h"

namespace fastflex::analyzer {
namespace {

using dataplane::PpmKind;
using dataplane::PpmSignature;
using dataplane::ResourceVector;

PpmDescriptor Desc(std::string name, PpmKind kind, std::vector<std::uint64_t> params,
                   ResourceVector demand, PpmRole role = PpmRole::kSupport) {
  return PpmDescriptor{std::move(name), PpmSignature{kind, std::move(params)}, demand, role,
                       dataplane::mode::kAlwaysOn};
}

TEST(EquivalenceTest, SameKindAndParams) {
  const auto a = Desc("x", PpmKind::kBloomFilter, {1024, 3}, {});
  const auto b = Desc("y", PpmKind::kBloomFilter, {1024, 3}, {});
  const auto c = Desc("z", PpmKind::kBloomFilter, {2048, 3}, {});
  const auto d = Desc("w", PpmKind::kCountMinSketch, {1024, 3}, {});
  EXPECT_TRUE(Equivalent(a, b));  // names differ, function identical
  EXPECT_FALSE(Equivalent(a, c));
  EXPECT_FALSE(Equivalent(a, d));
}

TEST(MergeTest, CollapsesEquivalentModulesAcrossBoosters) {
  BoosterSpec b1{"one",
                 {Desc("parser", PpmKind::kParser, {0xf}, {1, 0.5, 0, 0}),
                  Desc("work1", PpmKind::kMeter, {1}, {1, 0, 0, 2})},
                 {{"parser", "work1", 1.0}}};
  BoosterSpec b2{"two",
                 {Desc("parser", PpmKind::kParser, {0xf}, {1, 0.5, 0, 0}),
                  Desc("work2", PpmKind::kMeter, {2}, {1, 0, 0, 2})},
                 {{"parser", "work2", 1.0}}};
  const MergedGraph g = Merge({b1, b2});
  EXPECT_EQ(g.ppms.size(), 3u);  // parser shared, two distinct workers
  const std::size_t parser = g.FindEquivalent(b1.ppms[0]);
  ASSERT_NE(parser, MergedGraph::npos);
  EXPECT_EQ(g.ppms[parser].used_by.size(), 2u);
  EXPECT_EQ(g.ppms[parser].original_names.size(), 2u);
}

TEST(MergeTest, EdgesRetargetToMergedVertices) {
  BoosterSpec b1{"one",
                 {Desc("parser", PpmKind::kParser, {0xf}, {}),
                  Desc("sink", PpmKind::kDropPolicy, {1}, {})},
                 {{"parser", "sink", 2.0}}};
  BoosterSpec b2{"two",
                 {Desc("parser", PpmKind::kParser, {0xf}, {}),
                  Desc("sink", PpmKind::kDropPolicy, {1}, {})},
                 {{"parser", "sink", 3.0}}};
  const MergedGraph g = Merge({b1, b2});
  EXPECT_EQ(g.ppms.size(), 2u);
  ASSERT_EQ(g.edges.size(), 1u);
  EXPECT_DOUBLE_EQ(g.edges[0].weight, 5.0);  // weights accumulate
}

TEST(MergeTest, RequiredModeIsUnionAndDetectionDominates) {
  auto a = Desc("shared", PpmKind::kBloomFilter, {64, 2}, {});
  a.required_mode = dataplane::mode::kLfaDrop;
  auto b = Desc("shared", PpmKind::kBloomFilter, {64, 2}, {});
  b.required_mode = dataplane::mode::kLfaObfuscate;
  b.role = PpmRole::kDetection;
  const MergedGraph g = Merge({BoosterSpec{"one", {a}, {}}, BoosterSpec{"two", {b}, {}}});
  ASSERT_EQ(g.ppms.size(), 1u);
  EXPECT_EQ(g.ppms[0].descriptor.required_mode,
            dataplane::mode::kLfaDrop | dataplane::mode::kLfaObfuscate);
  EXPECT_EQ(g.ppms[0].descriptor.role, PpmRole::kDetection);
}

TEST(MergeTest, RealBoosterSuiteShares) {
  const auto specs = boosters::SpecsFor(boosters::FullBoosterSuite());
  const MergedGraph g = Merge(specs);
  const MergeSavings s = ComputeSavings(specs, g);
  EXPECT_GT(s.modules_before, s.modules_after);
  EXPECT_GE(s.shared_modules, 3u);  // parser, deparser, bloom at minimum
  EXPECT_LT(s.demand_after.stages, s.demand_before.stages);
  EXPECT_LT(s.demand_after.sram_mb, s.demand_before.sram_mb);
}

TEST(MergeTest, SingleBoosterIsIdentity) {
  const auto spec = boosters::Registry::Global().Find("lfa_detection")->spec();
  const MergedGraph g = Merge({spec});
  EXPECT_EQ(g.ppms.size(), spec.ppms.size());
  const MergeSavings s = ComputeSavings({spec}, g);
  EXPECT_EQ(s.shared_modules, 0u);
  EXPECT_DOUBLE_EQ(s.demand_after.stages, s.demand_before.stages);
}

TEST(ClusterTest, HeavyEdgesStayTogether) {
  // a ==5== b --0.1-- c: a,b cluster; c stays out when capacity is tight.
  BoosterSpec spec{"s",
                   {Desc("a", PpmKind::kMeter, {1}, {2, 0, 0, 0}),
                    Desc("b", PpmKind::kMeter, {2}, {2, 0, 0, 0}),
                    Desc("c", PpmKind::kMeter, {3}, {2, 0, 0, 0})},
                   {{"a", "b", 5.0}, {"b", "c", 0.1}}};
  const MergedGraph g = Merge({spec});
  const auto clusters = ClusterGraph(g, ResourceVector{4, 100, 10000, 100});
  ASSERT_EQ(clusters.size(), 2u);
  // The heavy pair shares a cluster.
  bool found_pair = false;
  for (const auto& c : clusters) {
    if (c.members.size() == 2) {
      found_pair = true;
      EXPECT_DOUBLE_EQ(c.demand.stages, 4.0);
    }
  }
  EXPECT_TRUE(found_pair);
  EXPECT_DOUBLE_EQ(CutWeight(g, clusters), 0.1);
}

TEST(ClusterTest, CapacityLimitsClusterGrowth) {
  BoosterSpec spec{"s",
                   {Desc("a", PpmKind::kMeter, {1}, {3, 0, 0, 0}),
                    Desc("b", PpmKind::kMeter, {2}, {3, 0, 0, 0})},
                   {{"a", "b", 10.0}}};
  const MergedGraph g = Merge({spec});
  // Capacity 5 stages cannot hold both (3+3).
  const auto clusters = ClusterGraph(g, ResourceVector{5, 100, 10000, 100});
  EXPECT_EQ(clusters.size(), 2u);
  EXPECT_DOUBLE_EQ(CutWeight(g, clusters), 10.0);
}

TEST(ClusterTest, UnlimitedCapacityMergesConnectedComponents) {
  const auto specs = boosters::SpecsFor(boosters::FullBoosterSuite());
  const MergedGraph g = Merge(specs);
  const auto clusters = ClusterGraph(g, ResourceVector{1e9, 1e9, 1e9, 1e9});
  // Everything reachable through edges collapses; the cut weight is zero.
  EXPECT_DOUBLE_EQ(CutWeight(g, clusters), 0.0);
}

TEST(ClusterTest, DetectionRolePropagatesToCluster) {
  auto det = Desc("det", PpmKind::kFlowStateTable, {64, 1}, {1, 0, 0, 0},
                  PpmRole::kDetection);
  auto sup = Desc("sup", PpmKind::kParser, {0xf}, {1, 0, 0, 0});
  BoosterSpec spec{"s", {det, sup}, {{"det", "sup", 1.0}}};
  const MergedGraph g = Merge({spec});
  const auto clusters = ClusterGraph(g, ResourceVector{10, 10, 10, 10});
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].role, PpmRole::kDetection);
}

TEST(ClusterTest, DeterministicOutput) {
  const auto specs = boosters::SpecsFor(boosters::FullBoosterSuite());
  const MergedGraph g1 = Merge(specs);
  const MergedGraph g2 = Merge(specs);
  const auto cap = dataplane::DefaultSwitchCapacity();
  const auto c1 = ClusterGraph(g1, cap);
  const auto c2 = ClusterGraph(g2, cap);
  ASSERT_EQ(c1.size(), c2.size());
  for (std::size_t i = 0; i < c1.size(); ++i) EXPECT_EQ(c1[i].members, c2[i].members);
}

TEST(SpecTest, AllBoostersAreWellFormed) {
  // Every registered booster, including the support boosters the
  // evaluation suite leaves out (fast_failover, in_band_telemetry).
  for (const auto& spec :
       boosters::SpecsFor(boosters::Registry::Global().Names())) {
    EXPECT_FALSE(spec.name.empty());
    EXPECT_GE(spec.ppms.size(), 3u);  // parser + logic + deparser
    EXPECT_NE(spec.Find("parser"), nullptr);
    EXPECT_NE(spec.Find("deparser"), nullptr);
    for (const auto& e : spec.edges) {
      EXPECT_NE(spec.Find(e.from), nullptr) << spec.name << " edge from " << e.from;
      EXPECT_NE(spec.Find(e.to), nullptr) << spec.name << " edge to " << e.to;
      EXPECT_GT(e.weight, 0.0);
    }
    EXPECT_TRUE(spec.TotalDemand().FitsIn(dataplane::DefaultSwitchCapacity()))
        << spec.name << " does not fit a switch alone";
  }
}

}  // namespace
}  // namespace fastflex::analyzer
