#!/usr/bin/env python3
"""Unit tests for tools/bench_diff.py, run under ctest.

The gate runner guards every bench artifact in CI; a bug here silently
green-lights regressions, so it gets the same test discipline as the C++.
Covers the four check types and — the regression that motivated this file —
the hard failure when a gate references a metric absent from BOTH the
artifact and the baseline (previously such dangling references passed
silently forever).
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOL = os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir,
                    "tools", "bench_diff.py")


def run_gates(tmp, checks, artifact, baseline=None, extra_args=()):
    """Writes gates/artifact/baseline into tmp, runs the tool, returns
    (exit_code, stdout)."""
    with open(os.path.join(tmp, "gates.json"), "w") as f:
        json.dump({"checks": checks}, f)
    with open(os.path.join(tmp, "ART.json"), "w") as f:
        json.dump(artifact, f)
    if baseline is not None:
        with open(os.path.join(tmp, "BASE.json"), "w") as f:
            json.dump(baseline, f)
    proc = subprocess.run(
        [sys.executable, TOOL, "--gates", os.path.join(tmp, "gates.json"),
         "--artifact-dir", tmp, "--baseline-dir", tmp,
         "--report", os.path.join(tmp, "report.md"), *extra_args],
        capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def compare_check(**overrides):
    check = {"type": "compare", "name": "t", "artifact": "ART.json",
             "baseline": "BASE.json"}
    check.update(overrides)
    return check


class CompareChecks(unittest.TestCase):
    def test_identical_trees_pass(self):
        doc = {"seed": 1, "v": 2.0, "nested": {"list": [1, 2]}}
        with tempfile.TemporaryDirectory() as tmp:
            code, out = run_gates(tmp, [compare_check(exact_leaves=["seed"])],
                                  doc, doc)
        self.assertEqual(code, 0, out)

    def test_exact_leaf_mismatch_fails(self):
        with tempfile.TemporaryDirectory() as tmp:
            code, out = run_gates(tmp, [compare_check(exact_leaves=["seed"])],
                                  {"seed": 2}, {"seed": 1})
        self.assertEqual(code, 1, out)
        self.assertIn("exact field", out)

    def test_tolerant_numbers_pass_within_rel_tol(self):
        with tempfile.TemporaryDirectory() as tmp:
            code, out = run_gates(
                tmp, [compare_check(num_rel_tol=0.35, num_abs_tol=0.1)],
                {"x": 1.2}, {"x": 1.0})
        self.assertEqual(code, 0, out)

    def test_structural_missing_key_fails(self):
        with tempfile.TemporaryDirectory() as tmp:
            code, out = run_gates(tmp, [compare_check()],
                                  {"a": 1}, {"a": 1, "b": 2})
        self.assertEqual(code, 1, out)
        self.assertIn("missing from artifact", out)

    def test_timing_subtree_ignores_numeric_drift(self):
        with tempfile.TemporaryDirectory() as tmp:
            code, out = run_gates(
                tmp, [compare_check(timing_subtrees=["timing"])],
                {"timing": {"t": 99.0}}, {"timing": {"t": 0.001}})
        self.assertEqual(code, 0, out)

    def test_dangling_exact_leaf_fails(self):
        # The silent-pass regression: a metric renamed in the artifact AND
        # baseline leaves the gate referencing nothing — must hard-fail.
        with tempfile.TemporaryDirectory() as tmp:
            code, out = run_gates(
                tmp, [compare_check(exact_leaves=["seed", "renamed_away"])],
                {"seed": 1}, {"seed": 1})
        self.assertEqual(code, 1, out)
        self.assertIn("renamed_away", out)
        self.assertIn("matches no leaf", out)

    def test_dangling_timing_subtree_fails(self):
        with tempfile.TemporaryDirectory() as tmp:
            code, out = run_gates(
                tmp, [compare_check(timing_subtrees=["gone"])],
                {"seed": 1}, {"seed": 1})
        self.assertEqual(code, 1, out)
        self.assertIn("gone", out)
        self.assertIn("matches no path", out)

    def test_string_and_bool_leaves_count_as_seen(self):
        # "schema" is a string leaf and "ok" a bool leaf in real gates;
        # listing them in exact_leaves must not trip the dangling check.
        doc = {"schema": "v1", "ok": True, "seed": 1}
        with tempfile.TemporaryDirectory() as tmp:
            code, out = run_gates(
                tmp, [compare_check(exact_leaves=["schema", "ok", "seed"])],
                doc, doc)
        self.assertEqual(code, 0, out)


class FlagAndThresholdChecks(unittest.TestCase):
    def test_flag_pass_and_fail(self):
        check = {"type": "flag", "name": "f", "artifact": "ART.json",
                 "path": "determinism.identical", "expect": True}
        with tempfile.TemporaryDirectory() as tmp:
            code, _ = run_gates(tmp, [check], {"determinism": {"identical": True}})
            self.assertEqual(code, 0)
            code, _ = run_gates(tmp, [check], {"determinism": {"identical": False}})
            self.assertEqual(code, 1)

    def test_flag_missing_path_fails(self):
        check = {"type": "flag", "name": "f", "artifact": "ART.json",
                 "path": "determinism.identical", "expect": True}
        with tempfile.TemporaryDirectory() as tmp:
            code, out = run_gates(tmp, [check], {"other": 1})
        self.assertEqual(code, 1, out)
        self.assertIn("not found", out)

    def test_threshold_max(self):
        check = {"type": "threshold", "name": "t", "artifact": "ART.json",
                 "metric": "headline.ratio", "max": 1.05}
        with tempfile.TemporaryDirectory() as tmp:
            code, _ = run_gates(tmp, [check], {"headline": {"ratio": 1.01}})
            self.assertEqual(code, 0)
            code, _ = run_gates(tmp, [check], {"headline": {"ratio": 1.2}})
            self.assertEqual(code, 1)

    def test_threshold_cpu_scaled_min(self):
        check = {"type": "threshold", "name": "t", "artifact": "ART.json",
                 "metric": "timing.speedup", "min": 3.0,
                 "cpu_scaled": {"cpus_path": "timing.cpus", "factor": 0.6,
                                "cap": 3.0}}
        with tempfile.TemporaryDirectory() as tmp:
            # 1 cpu: requirement relaxes to 0.6, so 1.0 passes.
            code, _ = run_gates(tmp, [check],
                                {"timing": {"speedup": 1.0, "cpus": 1}})
            self.assertEqual(code, 0)
            # 16 cpus: requirement caps at 3.0, so 1.0 fails.
            code, _ = run_gates(tmp, [check],
                                {"timing": {"speedup": 1.0, "cpus": 16}})
            self.assertEqual(code, 1)


class RatioChecks(unittest.TestCase):
    def test_ratio_on_google_benchmark_artifact(self):
        art = {"benchmarks": [
            {"name": "BM_Fast", "items_per_second": 200.0},
            {"name": "BM_Slow", "items_per_second": 100.0}]}
        check = {"type": "ratio", "name": "r", "artifact": "ART.json",
                 "numerator": "BM_Fast", "denominator": "BM_Slow",
                 "field": "items_per_second", "min": 1.5}
        with tempfile.TemporaryDirectory() as tmp:
            code, _ = run_gates(tmp, [check], art)
            self.assertEqual(code, 0)
            check["min"] = 2.5
            code, _ = run_gates(tmp, [check], art)
            self.assertEqual(code, 1)

    def test_missing_benchmark_fails(self):
        check = {"type": "ratio", "name": "r", "artifact": "ART.json",
                 "numerator": "BM_Gone", "denominator": "BM_Slow",
                 "field": "items_per_second", "min": 1.0}
        with tempfile.TemporaryDirectory() as tmp:
            code, out = run_gates(
                tmp, [check],
                {"benchmarks": [{"name": "BM_Slow", "items_per_second": 1.0}]})
        self.assertEqual(code, 1, out)
        self.assertIn("not found", out)


class Misc(unittest.TestCase):
    def test_missing_artifact_fails(self):
        check = {"type": "flag", "name": "f", "artifact": "NOPE.json",
                 "path": "x", "expect": True}
        with tempfile.TemporaryDirectory() as tmp:
            code, out = run_gates(tmp, [check], {"x": True})
        self.assertEqual(code, 1, out)
        self.assertIn("artifact not found", out)

    def test_unknown_check_type_fails(self):
        with tempfile.TemporaryDirectory() as tmp:
            code, out = run_gates(
                tmp, [{"type": "bogus", "name": "b", "artifact": "ART.json"}],
                {"x": 1})
        self.assertEqual(code, 1, out)

    def test_report_written_on_failure(self):
        check = {"type": "flag", "name": "f", "artifact": "ART.json",
                 "path": "x", "expect": True}
        with tempfile.TemporaryDirectory() as tmp:
            code, _ = run_gates(tmp, [check], {"x": False})
            self.assertEqual(code, 1)
            with open(os.path.join(tmp, "report.md")) as f:
                report = f.read()
        self.assertIn("FAIL", report)

    def test_markdown_gate_table(self):
        # --markdown writes one table row per gate with value, bound, and
        # result — the shape CI appends to $GITHUB_STEP_SUMMARY.
        checks = [
            {"type": "threshold", "name": "speed", "artifact": "ART.json",
             "metric": "timing.speedup", "min": 2.0,
             "cpu_scaled": {"cpus_path": "timing.cpus", "factor": 0.5,
                            "cap": 2.0}},
            {"type": "flag", "name": "det", "artifact": "ART.json",
             "path": "determinism.identical", "expect": True},
        ]
        art = {"timing": {"speedup": 2.5, "cpus": 8},
               "determinism": {"identical": False}}
        with tempfile.TemporaryDirectory() as tmp:
            md_path = os.path.join(tmp, "table.md")
            code, _ = run_gates(tmp, checks, art,
                                extra_args=["--markdown", md_path])
            self.assertEqual(code, 1)  # det fails
            with open(md_path) as f:
                table = f.read()
        self.assertIn("| gate | value | bound | result |", table)
        self.assertIn("| speed | 2.500 |", table)
        self.assertIn("| PASS |", table)
        self.assertIn("| det | False | == True | FAIL |", table)
        self.assertIn("1/2 checks passed.", table)


if __name__ == "__main__":
    unittest.main()
