// Blink-style fast connectivity recovery tests: silent link failures are
// detected from the retransmission wave and routed around in the data
// plane; restoration is rediscovered optimistically.
#include <gtest/gtest.h>

#include "boosters/blink.h"
#include "test_net.h"

namespace fastflex::boosters {
namespace {

using fastflex::testing::TestNet;

/// Triangle with hosts on switches 0 and 1; the primary path from h0 to h1
/// is forced through... actually: h0 at s0, h1 at s1, with the direct 0-1
/// link as primary and 0-2-1 as the backup fast-reroute path.
struct BlinkNet {
  TestNet tn;
  std::shared_ptr<BlinkRecoveryPpm> blink;
  LinkId primary;  // s0 -> s1

  explicit BlinkNet(BlinkConfig config = {}) {
    for (int i = 0; i < 3; ++i) {
      tn.switches.push_back(
          tn.topo.AddNode(sim::NodeKind::kSwitch, "s" + std::to_string(i)));
    }
    primary = tn.topo.AddDuplexLink(tn.switches[0], tn.switches[1], 50e6,
                                    2 * kMillisecond, 150'000);
    tn.topo.AddDuplexLink(tn.switches[0], tn.switches[2], 50e6, 2 * kMillisecond, 150'000);
    tn.topo.AddDuplexLink(tn.switches[2], tn.switches[1], 50e6, 2 * kMillisecond, 150'000);
    tn.hosts.push_back(tn.topo.AddNode(sim::NodeKind::kHost, "h0"));
    tn.topo.AddDuplexLink(tn.switches[0], tn.hosts[0], 100e6, kMillisecond, 150'000);
    tn.hosts.push_back(tn.topo.AddNode(sim::NodeKind::kHost, "h1"));
    tn.topo.AddDuplexLink(tn.switches[1], tn.hosts[1], 100e6, kMillisecond, 150'000);

    tn.net = std::make_unique<sim::Network>(tn.topo, 3);
    control::InstallDstRoutes(*tn.net);
    for (NodeId s : tn.switches) {
      auto pipe = std::make_unique<dataplane::Pipeline>(dataplane::DefaultSwitchCapacity());
      tn.net->switch_at(s)->SetProcessor(pipe.get());
      tn.pipelines.push_back(std::move(pipe));
    }
    blink = std::make_shared<BlinkRecoveryPpm>(tn.net.get(), tn.sw(0), config);
    tn.pipe(0)->Install(blink);
  }

  std::vector<FlowId> StartFlows(int n) {
    std::vector<FlowId> flows;
    for (int i = 0; i < n; ++i) {
      sim::TcpParams p;
      p.max_cwnd = 20;
      p.min_rto = 200 * kMillisecond + i * 10 * kMillisecond;
      flows.push_back(tn.net->StartTcpFlow(tn.hosts[0], tn.hosts[1], p,
                                           100 * kMillisecond + i * 50 * kMillisecond));
    }
    return flows;
  }

  std::uint64_t Delivered(const std::vector<FlowId>& flows) {
    std::uint64_t total = 0;
    for (FlowId f : flows) total += tn.net->flow_stats(f).delivered_bytes;
    return total;
  }
};

TEST(BlinkTest, SilentLinkFailureTriggersFastReroute) {
  BlinkNet bn;
  const auto flows = bn.StartFlows(8);
  bn.tn.net->RunUntil(3 * kSecond);
  ASSERT_EQ(bn.blink->failovers(), 0u);
  const std::uint64_t before = bn.Delivered(flows);

  // The primary link fails silently at t=3s — a unidirectional gray
  // failure (the common real-world case: one direction blackholes, the
  // reverse keeps carrying ACKs, so no local signal exists at all).
  bn.tn.net->SetLinkUp(bn.primary, false);
  bn.tn.net->RunUntil(3 * kSecond + 800 * kMillisecond);
  EXPECT_GE(bn.blink->failovers(), 1u);
  EXPECT_TRUE(bn.blink->avoiding(bn.tn.switches[1]));

  // Traffic keeps flowing over the backup path.
  bn.tn.net->RunUntil(6 * kSecond);
  const std::uint64_t after = bn.Delivered(flows);
  EXPECT_GT(after - before, 3'000'000u);  // several Mbps-seconds of progress
  EXPECT_GT(bn.tn.net->switch_at(bn.tn.switches[2])->forwarded_packets(), 1000u);
}

TEST(BlinkTest, NoFalsePositivesOnHealthyCongestedPath) {
  // Congestion loss also causes retransmissions, but from FEW simultaneous
  // flows at this small scale; the threshold keeps Blink quiet.
  BlinkConfig config;
  config.disrupted_flows_threshold = 6;
  BlinkNet bn(config);
  const auto flows = bn.StartFlows(2);  // two greedy flows: steady AIMD loss
  bn.tn.net->RunUntil(10 * kSecond);
  EXPECT_EQ(bn.blink->failovers(), 0u);
  EXPECT_GT(bn.Delivered(flows), 10'000'000u);
}

TEST(BlinkTest, OptimisticRetryRediscoversRestoredLink) {
  BlinkConfig config;
  config.retry_after = kSecond;
  BlinkNet bn(config);
  const auto flows = bn.StartFlows(8);
  bn.tn.net->RunUntil(3 * kSecond);
  bn.tn.net->SetLinkUp(bn.primary, false);
  bn.tn.net->RunUntil(4 * kSecond);
  ASSERT_GE(bn.blink->failovers(), 1u);

  // The link comes back at t=4s; after the retry the primary carries
  // traffic again.
  bn.tn.net->SetLinkUp(bn.primary, true);
  bn.tn.net->RunUntil(5 * kSecond + 500 * kMillisecond);
  EXPECT_FALSE(bn.blink->avoiding(bn.tn.switches[1]));
  const auto primary_tx_before = bn.tn.net->link_runtime(bn.primary).tx_packets;
  bn.tn.net->RunUntil(7 * kSecond);
  EXPECT_GT(bn.tn.net->link_runtime(bn.primary).tx_packets, primary_tx_before + 100);
  (void)flows;
}

TEST(BlinkTest, PersistentFailureRetriggersAfterRetry) {
  BlinkConfig config;
  config.retry_after = 500 * kMillisecond;
  BlinkNet bn(config);
  bn.StartFlows(8);
  bn.tn.net->RunUntil(3 * kSecond);
  bn.tn.net->SetLinkUp(bn.primary, false);  // stays down
  bn.tn.net->RunUntil(8 * kSecond);
  // Each optimistic retry hits the dead link and re-triggers.
  EXPECT_GE(bn.blink->failovers(), 2u);
  EXPECT_TRUE(bn.blink->avoiding(bn.tn.switches[1]));
}

TEST(BlinkTest, LinkDownDropsAreCounted) {
  BlinkNet bn;
  bn.tn.net->SetLinkUp(bn.primary, false);
  sim::Packet pkt;
  pkt.kind = sim::PacketKind::kUdp;
  pkt.size_bytes = 100;
  bn.tn.net->SendOnLink(bn.primary, std::move(pkt));
  EXPECT_EQ(bn.tn.net->link_runtime(bn.primary).down_drops, 1u);
  EXPECT_EQ(bn.tn.net->link_runtime(bn.primary).tx_packets, 0u);
}

}  // namespace
}  // namespace fastflex::boosters
