// Coremelt tests: the bot-to-bot link-flooding variant that defeats
// destination-convergence detection, and the aggregate swarm signature that
// catches it.
#include <gtest/gtest.h>

#include "attacks/generators.h"
#include "control/orchestrator.h"
#include "scenarios/hotnets.h"
#include "sim/switch_node.h"

namespace fastflex::scenarios {
namespace {

/// Hotnets topology with 12 decoys so Coremelt has many right-side
/// endpoints to pair with (no single destination converges).
struct CoremeltNet {
  HotnetsTopology h;
  std::unique_ptr<sim::Network> net;
  std::unique_ptr<control::FastFlexOrchestrator> orch;
  NormalTraffic normal;

  explicit CoremeltNet(std::uint64_t aggregate_alarm) {
    HotnetsParams params;
    params.decoy_count = 12;
    h = BuildHotnetsTopology(params);
    net = std::make_unique<sim::Network>(h.topo, 1);
    net->EnableLinkSampling(10 * kMillisecond);
    normal = StartNormalTraffic(*net, h);
    control::OrchestratorConfig cfg;
    cfg.te = scheduler::TeOptions{.k_paths = 2};
    cfg.lfa.aggregate_flow_alarm = aggregate_alarm;
    orch = std::make_unique<control::FastFlexOrchestrator>(net.get(), cfg);
    orch->Deploy(normal.demands, [this](sim::Network& n) { SpreadDecoyRoutes(n, h); });
  }

  attacks::CoremeltConfig AttackConfig() const {
    attacks::CoremeltConfig atk;
    atk.left_bots = h.bots;
    atk.right_bots = h.decoys;  // compromised servers on the far side
    atk.total_flows = 200;
    atk.start = 5 * kSecond;
    return atk;
  }
};

TEST(CoremeltTest, SpreadsFlowsOverManyDestinations) {
  CoremeltNet cn(/*aggregate_alarm=*/80);
  const auto flows = attacks::LaunchCoremelt(*cn.net, cn.AttackConfig());
  EXPECT_EQ(flows.size(), 200u);
  cn.net->RunUntil(8 * kSecond);
  // Count flows per destination: no destination exceeds the Crossfire
  // convergence threshold (40).
  std::map<NodeId, int> per_dst;
  for (FlowId f : flows) ++per_dst[cn.net->flow_endpoints(f).dst];
  EXPECT_GE(per_dst.size(), 10u);
  for (const auto& [dst, count] : per_dst) EXPECT_LT(count, 40);
}

TEST(CoremeltTest, EvadesConvergenceSignatureAlone) {
  // With the aggregate signature disabled (threshold huge), Coremelt melts
  // the critical links and the detector never alarms — the documented gap
  // in destination-convergence detection.
  CoremeltNet cn(/*aggregate_alarm=*/1'000'000);
  attacks::LaunchCoremelt(*cn.net, cn.AttackConfig());
  cn.net->RunUntil(20 * kSecond);
  bool any_alarm = false;
  for (const auto& n : cn.net->topology().nodes()) {
    if (n.kind != sim::NodeKind::kSwitch) continue;
    if (auto* det = cn.orch->lfa_detector(n.id); det != nullptr && det->alarm_active()) {
      any_alarm = true;
    }
  }
  EXPECT_FALSE(any_alarm);
  // And the attack is really doing damage meanwhile.
  const double goodput = cn.net->AggregateGoodputBps(cn.normal.flows, 18 * kSecond);
  EXPECT_LT(goodput, 0.8 * 23e6);
}

TEST(CoremeltTest, AggregateSwarmSignatureDetectsAndMitigates) {
  CoremeltNet cn(/*aggregate_alarm=*/80);
  attacks::LaunchCoremelt(*cn.net, cn.AttackConfig());
  cn.net->RunUntil(20 * kSecond);

  // The swarm was counted and the alarm fired somewhere upstream.
  bool any_alarm = false;
  std::uint64_t max_swarm = 0;
  for (const auto& n : cn.net->topology().nodes()) {
    if (n.kind != sim::NodeKind::kSwitch) continue;
    if (auto* det = cn.orch->lfa_detector(n.id)) {
      any_alarm |= det->alarm_raised_at() > 0;
      max_swarm = std::max(max_swarm, det->persistent_low_rate_flows());
    }
  }
  EXPECT_TRUE(any_alarm);
  EXPECT_GE(max_swarm, 80u);

  // Mitigation engaged: swarm flows were steered off the critical links
  // (they score at the reroute threshold, not the drop threshold — only
  // destination-converging floods earn the illusion-of-success dropping),
  // and normal flows recover close to their stable rate.
  std::uint64_t rerouted = 0;
  for (const auto& n : cn.net->topology().nodes()) {
    if (n.kind != sim::NodeKind::kSwitch) continue;
    if (auto* rr = cn.orch->reroute(n.id)) rerouted += rr->packets_rerouted();
  }
  EXPECT_GT(rerouted, 1000u);
  const double goodput = cn.net->AggregateGoodputBps(cn.normal.flows, 18 * kSecond);
  EXPECT_GT(goodput, 0.85 * 23e6);
}

TEST(CoremeltTest, NormalTrafficAloneNeverTripsAggregateSignature) {
  CoremeltNet cn(/*aggregate_alarm=*/80);
  cn.net->RunUntil(15 * kSecond);
  for (const auto& n : cn.net->topology().nodes()) {
    if (n.kind != sim::NodeKind::kSwitch) continue;
    if (auto* det = cn.orch->lfa_detector(n.id)) {
      EXPECT_FALSE(det->aggregate_suspicious()) << n.name;
      EXPECT_EQ(det->alarm_raised_at(), 0) << n.name;
    }
  }
  EXPECT_EQ(cn.net->total_policy_drops(), 0u);
}

}  // namespace
}  // namespace fastflex::scenarios
