// Crossfire attacker tests: reconnaissance, flood mechanics, roll triggers.
#include <gtest/gtest.h>

#include "attacks/crossfire.h"
#include "control/routes.h"
#include "control/sdn_controller.h"
#include "scenarios/hotnets.h"
#include "scheduler/te.h"
#include "sim/switch_node.h"

namespace fastflex::attacks {
namespace {

using scenarios::BuildHotnetsTopology;
using scenarios::HotnetsTopology;
using scenarios::SpreadDecoyRoutes;

struct AttackNet {
  HotnetsTopology h = BuildHotnetsTopology();
  std::unique_ptr<sim::Network> net;

  AttackNet() {
    net = std::make_unique<sim::Network>(h.topo, 1);
    net->EnableLinkSampling(10 * kMillisecond);
    control::InstallDstRoutes(*net);
    SpreadDecoyRoutes(*net, h);
  }
};

TEST(CrossfireTest, MapsDistinctPathsToDecoys) {
  AttackNet an;
  CrossfireConfig config;
  config.bots = an.h.bots;
  config.decoys = an.h.decoys;
  config.attack_at = 100 * kSecond;  // map only
  CrossfireAttacker attacker(an.net.get(), config);
  attacker.Start();
  an.net->RunUntil(5 * kSecond);
  ASSERT_TRUE(attacker.mapped());
  // The decoy spread gives three distinct paths (via M1, M2, M3).
  ASSERT_EQ(attacker.mapped_paths().size(), 3u);
  std::set<std::vector<Address>> distinct(attacker.mapped_paths().begin(),
                                          attacker.mapped_paths().end());
  EXPECT_EQ(distinct.size(), 3u);
  // Each mapped path traverses a different middle switch.
  const auto& topo = an.net->topology();
  EXPECT_EQ(attacker.mapped_paths()[0][1], topo.node(an.h.m1).address);
  EXPECT_EQ(attacker.mapped_paths()[1][1], topo.node(an.h.m2).address);
  EXPECT_EQ(attacker.mapped_paths()[2][1], topo.node(an.h.e).address);
}

TEST(CrossfireTest, FloodCongestsTargetedCriticalLink) {
  AttackNet an;
  CrossfireConfig config;
  config.bots = an.h.bots;
  config.decoys = an.h.decoys;
  config.attack_at = 3 * kSecond;
  config.flows_per_target = 150;
  config.probe_period = 100 * kSecond;  // never roll in this test
  CrossfireAttacker attacker(an.net.get(), config);
  attacker.Start();
  an.net->RunUntil(10 * kSecond);
  EXPECT_EQ(attacker.rounds(), 1);
  EXPECT_EQ(attacker.active_flows().size(), 150u);
  // Critical link 1 (M1->R) is saturated; critical link 2 is quiet.
  EXPECT_GT(an.net->LinkUtilization(an.h.critical1), 0.9);
  EXPECT_LT(an.net->LinkUtilization(an.h.critical2), 0.3);
}

TEST(CrossfireTest, AttackFlowsAreIndividuallyLowRate) {
  AttackNet an;
  CrossfireConfig config;
  config.bots = an.h.bots;
  config.decoys = an.h.decoys;
  config.attack_at = 2 * kSecond;
  config.flows_per_target = 100;
  config.probe_period = 100 * kSecond;
  CrossfireAttacker attacker(an.net.get(), config);
  attacker.Start();
  an.net->RunUntil(12 * kSecond);
  // Mean per-flow rate is well under the detector's low-rate ceiling.
  double total_bytes = 0;
  for (FlowId f : attacker.active_flows()) {
    total_bytes += static_cast<double>(an.net->flow_stats(f).delivered_bytes);
  }
  const double mean_bps = total_bytes * 8.0 / 10.0 / 100.0;
  EXPECT_LT(mean_bps, 500e3);
  EXPECT_GT(mean_bps, 10e3);
}

TEST(CrossfireTest, RollsOnGoodputRecovery) {
  // No defense interferes, but the attacker's own flows recover when the
  // congestion it causes is removed — emulate by stopping half the flood.
  AttackNet an;
  CrossfireConfig config;
  config.bots = an.h.bots;
  config.decoys = an.h.decoys;
  config.attack_at = 2 * kSecond;
  config.flows_per_target = 150;
  config.probe_period = kSecond;
  config.warmup = 2 * kSecond;
  // Steady-state share under successful flooding is ~20 Mbps / 150 flows
  // = 133 kbps; the recovery trigger must sit above that.
  config.recovery_threshold_bps = 170'000;
  CrossfireAttacker attacker(an.net.get(), config);
  attacker.Start();
  an.net->RunUntil(6 * kSecond);
  ASSERT_EQ(attacker.rounds(), 1);
  // Relieve the congestion out from under the attacker (as a capacity
  // upgrade or TE spreading would): the flood no longer saturates, every
  // attack flow's goodput rises to its cwnd-limited rate.
  an.net->topology().link(an.h.critical1).rate_bps = 100e6;
  an.net->RunUntil(14 * kSecond);
  // Remaining flows' goodput rose above the threshold: the attacker rolled.
  EXPECT_GE(attacker.rounds(), 2);
  ASSERT_FALSE(attacker.rolls().empty());
  EXPECT_TRUE(attacker.rolls().front().goodput_recovered);
}

TEST(CrossfireTest, RollsOnVisiblePathChange) {
  AttackNet an;
  CrossfireConfig config;
  config.bots = an.h.bots;
  config.decoys = an.h.decoys;
  config.attack_at = 2 * kSecond;
  config.flows_per_target = 60;  // light: no goodput collapse
  config.probe_period = kSecond;
  config.recovery_threshold_bps = 1e12;  // disable the goodput signal
  CrossfireAttacker attacker(an.net.get(), config);
  attacker.Start();
  an.net->RunUntil(5 * kSecond);
  ASSERT_EQ(attacker.rounds(), 1);
  // The operator visibly reroutes the decoy prefix (dst-route change).
  const Address d1 = an.net->topology().node(an.h.decoys[0]).address;
  an.net->switch_at(an.h.a)->SetDstRoute(d1, {an.h.m2});
  an.net->switch_at(an.h.b)->SetDstRoute(d1, {an.h.m2});
  an.net->RunUntil(10 * kSecond);
  EXPECT_GE(attacker.rounds(), 2);
  ASSERT_FALSE(attacker.rolls().empty());
  EXPECT_TRUE(attacker.rolls().front().path_changed);
}

TEST(CrossfireTest, RollMovesFloodToNextDistinctPath) {
  AttackNet an;
  CrossfireConfig config;
  config.bots = an.h.bots;
  config.decoys = an.h.decoys;
  config.attack_at = 2 * kSecond;
  config.flows_per_target = 100;
  config.probe_period = kSecond;
  config.warmup = kSecond;
  config.recovery_threshold_bps = 50'000;  // hair trigger: rolls quickly
  CrossfireAttacker attacker(an.net.get(), config);
  attacker.Start();
  an.net->RunUntil(30 * kSecond);
  EXPECT_GE(attacker.rounds(), 2);
  // After rolling, the current decoy differs from the first target.
  if (!attacker.rolls().empty()) {
    EXPECT_NE(attacker.rolls().front().new_decoy, an.h.decoys[0]);
  }
}

TEST(CrossfireTest, StopCeasesAllFlows) {
  AttackNet an;
  CrossfireConfig config;
  config.bots = an.h.bots;
  config.decoys = an.h.decoys;
  config.attack_at = kSecond;
  config.flows_per_target = 50;
  CrossfireAttacker attacker(an.net.get(), config);
  attacker.Start();
  an.net->RunUntil(4 * kSecond);
  attacker.Stop();
  an.net->RunUntil(5 * kSecond);
  const double util_after = an.net->LinkUtilization(an.h.critical1);
  an.net->RunUntil(8 * kSecond);
  EXPECT_LT(an.net->LinkUtilization(an.h.critical1), std::max(0.1, util_after));
  EXPECT_TRUE(attacker.active_flows().empty());
}

}  // namespace
}  // namespace fastflex::attacks
