// Property suite for the cuckoo filter (src/dataplane/cuckoo.h): the
// guarantees the SYN proxy leans on, checked the adversarial way — against
// a reference model, at high load, and across randomized interleavings.
#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "boosters/syn_proxy.h"
#include "dataplane/cuckoo.h"
#include "dataplane/pipeline.h"
#include "dataplane/resources.h"
#include "util/rng.h"

namespace fastflex::dataplane {
namespace {

TEST(CuckooTest, NoFalseNegativesAtHighLoad) {
  CuckooFilter filter(1 << 12, 12);
  std::vector<std::uint64_t> stored;
  Rng rng(42);
  // Push to ~0.95 load; only keys whose Insert succeeded are guaranteed.
  const auto target = static_cast<std::size_t>(0.95 * filter.capacity_slots());
  while (stored.size() < target) {
    const std::uint64_t key = rng.Next();
    if (filter.Insert(key)) stored.push_back(key);
  }
  for (std::uint64_t key : stored) {
    ASSERT_TRUE(filter.Contains(key)) << "false negative for stored key " << key;
  }
  EXPECT_EQ(filter.occupied_slots(), stored.size());
}

TEST(CuckooTest, DeleteThenLookupMisses) {
  CuckooFilter filter(1 << 10, 12);
  std::vector<std::uint64_t> keys;
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t key = rng.Next();
    if (filter.Insert(key)) keys.push_back(key);
  }
  // Drain completely: with zero occupied slots there is nothing to collide
  // with, so every lookup must miss — an exact property, no FP allowance.
  for (std::uint64_t key : keys) EXPECT_TRUE(filter.Delete(key));
  EXPECT_EQ(filter.occupied_slots(), 0u);
  for (std::uint64_t key : keys) {
    EXPECT_FALSE(filter.Contains(key)) << "lookup hit after delete: " << key;
  }
}

TEST(CuckooTest, DeletedKeysMissWhileOthersRemain) {
  CuckooFilter filter(1 << 11, 12);
  std::vector<std::uint64_t> keep, remove;
  Rng rng(99);
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t key = rng.Next();
    if (filter.Insert(key)) (i % 2 == 0 ? keep : remove).push_back(key);
  }
  for (std::uint64_t key : remove) ASSERT_TRUE(filter.Delete(key));
  // The kept half must all still be present (deletes never strip a
  // different key's fingerprint: each removes exactly one matching copy
  // from the victim's own candidate buckets).
  for (std::uint64_t key : keep) ASSERT_TRUE(filter.Contains(key));
  // The removed half may alias surviving fingerprints, but only at the
  // false-positive rate of the residual table.
  std::size_t hits = 0;
  for (std::uint64_t key : remove) hits += filter.Contains(key) ? 1 : 0;
  const double rate = static_cast<double>(hits) / static_cast<double>(remove.size());
  EXPECT_LE(rate, 2.0 * filter.AnalyticFpBound());
}

TEST(CuckooTest, FalsePositiveRateWithinTwiceAnalyticBound) {
  CuckooFilter filter(1 << 13, 12);
  Rng rng(1234);
  const auto target = static_cast<std::size_t>(0.95 * filter.capacity_slots());
  std::unordered_set<std::uint64_t> present;
  while (filter.occupied_slots() < target) {
    const std::uint64_t key = rng.Next();
    if (filter.Insert(key)) present.insert(key);
  }
  // Probe keys that were never inserted.
  const int probes = 200'000;
  int fps = 0;
  for (int i = 0; i < probes; ++i) {
    const std::uint64_t key = rng.Next();
    if (present.contains(key)) continue;
    fps += filter.Contains(key) ? 1 : 0;
  }
  const double rate = static_cast<double>(fps) / static_cast<double>(probes);
  EXPECT_GT(rate, 0.0);  // at 0.95 load some aliasing is expected — sanity
  EXPECT_LE(rate, 2.0 * filter.AnalyticFpBound())
      << "fp rate " << rate << " vs bound " << filter.AnalyticFpBound();
}

TEST(CuckooTest, RandomizedOpsAgainstReferenceModel) {
  // >= 100k interleaved insert/delete/lookup ops cross-checked against a
  // multiset of the keys whose Insert reported success.  Invariants:
  //   - every modeled key is Contains-true (no false negatives, ever);
  //   - Delete succeeds for modeled keys and the model stays in sync;
  //   - occupied slot count always equals the model size.
  CuckooFilter filter(1 << 10, 12);
  std::unordered_multiset<std::uint64_t> model;
  std::vector<std::uint64_t> pool;  // insertion order, for picking victims
  Rng rng(0xfeedULL);
  int false_negatives = 0;
  for (int op = 0; op < 120'000; ++op) {
    const double what = rng.NextDouble();
    if (what < 0.45) {
      // Insert a fresh key (sometimes a duplicate of a live one: the filter
      // stores fingerprint copies, so multiset semantics are the model).
      const bool dup = !pool.empty() && rng.NextDouble() < 0.1;
      const std::uint64_t key =
          dup ? pool[static_cast<std::size_t>(rng.UniformInt(
                    0, static_cast<std::int64_t>(pool.size()) - 1))]
              : rng.Next();
      if (filter.Insert(key)) {
        model.insert(key);
        pool.push_back(key);
      }
    } else if (what < 0.8) {
      // Delete a key currently in the model (deleting non-members is
      // undefined for cuckoo filters — the caller contract the SYN proxy
      // honors by deleting only tracked flows).
      if (pool.empty()) continue;
      const auto idx = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(pool.size()) - 1));
      const std::uint64_t key = pool[idx];
      ASSERT_TRUE(filter.Delete(key)) << "delete failed for modeled key";
      model.erase(model.find(key));
      pool[idx] = pool.back();
      pool.pop_back();
    } else {
      // Lookup: a modeled key must hit; an arbitrary key may false-positive
      // (counted by the FP test above, not here).
      if (!pool.empty() && rng.NextDouble() < 0.7) {
        const std::uint64_t key = pool[static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<std::int64_t>(pool.size()) - 1))];
        false_negatives += filter.Contains(key) ? 0 : 1;
      } else {
        (void)filter.Contains(rng.Next());
      }
    }
    ASSERT_EQ(filter.occupied_slots(), model.size()) << "slot/model divergence at op " << op;
  }
  EXPECT_EQ(false_negatives, 0);
  EXPECT_GT(filter.insertions(), 0u);
  EXPECT_GT(filter.deletions(), 0u);
}

TEST(CuckooTest, EvictionTerminatesAndFailedInsertLosesNothing) {
  // A deliberately tiny table driven far past capacity: Insert must either
  // succeed within max_kicks displacements or fail cleanly, and a failed
  // insert must not evict any previously stored key.
  CuckooFilter filter(64, 12, /*max_kicks=*/50);
  std::vector<std::uint64_t> stored;
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t key = rng.Next();
    if (filter.Insert(key)) stored.push_back(key);
  }
  EXPECT_GT(filter.failed_inserts(), 0u) << "overload never hit table pressure";
  EXPECT_LE(filter.occupied_slots(), filter.capacity_slots());
  for (std::uint64_t key : stored) {
    ASSERT_TRUE(filter.Contains(key)) << "failed insert lost a stored key";
  }
}

TEST(CuckooTest, GeometryRoundsUpAndPricesSram) {
  CuckooFilter filter(1000, 12);  // rounded up to 1024 buckets
  EXPECT_EQ(filter.bucket_count(), 1024u);
  EXPECT_EQ(filter.capacity_slots(), 4096u);
  // One 16-bit register per slot: 2^18 buckets * 4 slots * 2 bytes = 2 MB.
  EXPECT_DOUBLE_EQ(CuckooFilter::SramCostMb(1 << 18, 16), 2.0);
  EXPECT_DOUBLE_EQ(filter.sram_mb(), CuckooFilter::SramCostMb(1000, 12));
}

TEST(CuckooTest, ExportImportRoundTripsSlots) {
  CuckooFilter a(256, 12);
  Rng rng(11);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t key = rng.Next();
    if (a.Insert(key)) keys.push_back(key);
  }
  CuckooFilter b(256, 12);
  b.ImportWords(a.ExportWords());
  EXPECT_EQ(b.occupied_slots(), a.occupied_slots());
  for (std::uint64_t key : keys) EXPECT_TRUE(b.Contains(key));
}

TEST(CuckooTest, PipelineAdmissionRejectsOversizedSynProxy) {
  // The SRAM accounting end to end: a SynProxyPpm sized for 1M+ flows at
  // 2^25 buckets wants 256 MB of stage memory — more than twice the whole
  // switch budget — so admission must refuse it, and the default geometry
  // must still fit alongside.
  boosters::SynProxyConfig huge;
  huge.filter_buckets = 1u << 25;
  auto oversized = std::make_shared<boosters::SynProxyPpm>(
      nullptr, nullptr, std::vector<Address>{1}, huge,
      boosters::HardeningConfig::Hardened());
  EXPECT_GT(oversized->demand().sram_mb, DefaultSwitchCapacity().sram_mb);

  Pipeline pipe(DefaultSwitchCapacity());
  EXPECT_FALSE(pipe.Install(oversized));
  EXPECT_EQ(pipe.modules().size(), 0u);

  auto fits = std::make_shared<boosters::SynProxyPpm>(
      nullptr, nullptr, std::vector<Address>{1}, boosters::SynProxyConfig{},
      boosters::HardeningConfig::Hardened());
  EXPECT_TRUE(pipe.Install(fits));
  EXPECT_TRUE(pipe.used().FitsIn(pipe.capacity()));
}

}  // namespace
}  // namespace fastflex::dataplane
