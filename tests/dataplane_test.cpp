// Data-plane model tests: resource vectors, pipeline admission control,
// module sharing, mode gating, flow tables, meters.
#include <gtest/gtest.h>

#include "boosters/shared_ppms.h"
#include "dataplane/flow_table.h"
#include "dataplane/meter.h"
#include "dataplane/pipeline.h"
#include "dataplane/resources.h"

namespace fastflex::dataplane {
namespace {

TEST(ResourceVectorTest, ArithmeticAndFits) {
  ResourceVector a{2, 1.5, 100, 4};
  ResourceVector b{1, 0.5, 28, 2};
  ResourceVector sum = a + b;
  EXPECT_DOUBLE_EQ(sum.stages, 3.0);
  EXPECT_DOUBLE_EQ(sum.sram_mb, 2.0);
  EXPECT_DOUBLE_EQ(sum.tcam_entries, 128.0);
  EXPECT_DOUBLE_EQ(sum.alus, 6.0);
  EXPECT_TRUE(sum.FitsIn(ResourceVector{3, 2, 128, 6}));
  EXPECT_FALSE(sum.FitsIn(ResourceVector{2.9, 2, 128, 6}));
  ResourceVector diff = sum - b;
  EXPECT_DOUBLE_EQ(diff.stages, a.stages);
}

TEST(ResourceVectorTest, MaxRatioIdentifiesBindingDimension) {
  ResourceVector demand{6, 10, 0, 4};
  ResourceVector cap{12, 20, 1000, 4};
  EXPECT_DOUBLE_EQ(demand.MaxRatio(cap), 1.0);  // ALUs bind
  ResourceVector impossible{0, 0, 1, 0};
  ResourceVector no_tcam{12, 20, 0, 4};
  EXPECT_GT(impossible.MaxRatio(no_tcam), 1.0);
}

TEST(ResourceVectorTest, ZeroAndDefaults) {
  EXPECT_TRUE(ResourceVector{}.IsZero());
  EXPECT_FALSE(DefaultSwitchCapacity().IsZero());
  EXPECT_TRUE(ResourceVector{}.FitsIn(DefaultSwitchCapacity()));
}

/// A trivial PPM that counts packets and optionally drops them.
class CountingPpm : public Ppm {
 public:
  CountingPpm(std::string name, ResourceVector demand, std::uint32_t required_mode,
              bool drop = false)
      : Ppm(std::move(name), PpmSignature{PpmKind::kMeter, {demand.alus > 0 ? 1u : 0u}},
            demand, required_mode),
        drop_(drop) {}
  void Process(sim::PacketContext& ctx) override {
    ++seen_;
    if (drop_) ctx.drop = true;
  }
  int seen() const { return seen_; }

 private:
  bool drop_;
  int seen_ = 0;
};

sim::PacketContext MakeContext(sim::Packet& pkt) {
  return sim::PacketContext{pkt, nullptr, kInvalidLink, 0, false, false, kInvalidNode, {}};
}

TEST(PipelineTest, AdmissionControlRejectsOversizedModules) {
  Pipeline pipe(ResourceVector{4, 4, 0, 8});
  EXPECT_TRUE(pipe.Install(std::make_shared<CountingPpm>("a", ResourceVector{2, 2, 0, 4},
                                                         mode::kAlwaysOn)));
  EXPECT_TRUE(pipe.Install(std::make_shared<CountingPpm>("b", ResourceVector{2, 2, 0, 4},
                                                         mode::kAlwaysOn)));
  // Third module exceeds the stage budget.
  EXPECT_FALSE(pipe.Install(std::make_shared<CountingPpm>("c", ResourceVector{1, 0, 0, 0},
                                                          mode::kAlwaysOn)));
  EXPECT_DOUBLE_EQ(pipe.used().stages, 4.0);
}

TEST(PipelineTest, UninstallFreesResources) {
  Pipeline pipe(ResourceVector{4, 4, 0, 8});
  pipe.Install(std::make_shared<CountingPpm>("a", ResourceVector{4, 4, 0, 8}, mode::kAlwaysOn));
  EXPECT_FALSE(pipe.CanFit(ResourceVector{1, 0, 0, 0}));
  EXPECT_TRUE(pipe.Uninstall("a"));
  EXPECT_TRUE(pipe.used().IsZero());
  EXPECT_FALSE(pipe.Uninstall("a"));  // already gone
}

TEST(PipelineTest, InstallSharedDeduplicatesBySignature) {
  Pipeline pipe(DefaultSwitchCapacity());
  auto first = pipe.InstallShared(std::make_shared<boosters::SuspiciousSrcBloomPpm>());
  auto second = pipe.InstallShared(std::make_shared<boosters::SuspiciousSrcBloomPpm>());
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first.get(), second.get());  // the same instance serves both
  EXPECT_EQ(pipe.modules().size(), 1u);
}

TEST(PipelineTest, InstallSharedDistinguishesDifferentParameters) {
  Pipeline pipe(DefaultSwitchCapacity());
  auto a = pipe.InstallShared(std::make_shared<boosters::SuspiciousSrcBloomPpm>(4096, 3));
  auto b = pipe.InstallShared(std::make_shared<boosters::SuspiciousSrcBloomPpm>(8192, 3));
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(pipe.modules().size(), 2u);
}

TEST(PipelineTest, ModeGatingSkipsInactiveModules) {
  Pipeline pipe(DefaultSwitchCapacity());
  auto always = std::make_shared<CountingPpm>("always", ResourceVector{}, mode::kAlwaysOn);
  auto gated = std::make_shared<CountingPpm>("gated", ResourceVector{}, mode::kLfaDrop);
  pipe.Install(always);
  pipe.Install(gated);

  sim::Packet pkt;
  auto ctx = MakeContext(pkt);
  pipe.Process(ctx);
  EXPECT_EQ(always->seen(), 1);
  EXPECT_EQ(gated->seen(), 0);

  pipe.ActivateMode(mode::kLfaDrop);
  auto ctx2 = MakeContext(pkt);
  pipe.Process(ctx2);
  EXPECT_EQ(gated->seen(), 1);

  pipe.DeactivateMode(mode::kLfaDrop);
  auto ctx3 = MakeContext(pkt);
  pipe.Process(ctx3);
  EXPECT_EQ(gated->seen(), 1);
}

TEST(PipelineTest, ModeWordBitOperations) {
  Pipeline pipe(DefaultSwitchCapacity());
  pipe.ActivateMode(mode::kLfaReroute | mode::kLfaDrop);
  EXPECT_TRUE(pipe.ModeActive(mode::kLfaReroute));
  EXPECT_TRUE(pipe.ModeActive(mode::kLfaDrop));
  EXPECT_FALSE(pipe.ModeActive(mode::kVolumetricFilter));
  pipe.DeactivateMode(mode::kLfaDrop);
  EXPECT_TRUE(pipe.ModeActive(mode::kLfaReroute));
  EXPECT_FALSE(pipe.ModeActive(mode::kLfaDrop));
}

TEST(PipelineTest, ProcessingStopsAtDrop) {
  Pipeline pipe(DefaultSwitchCapacity());
  auto dropper =
      std::make_shared<CountingPpm>("dropper", ResourceVector{}, mode::kAlwaysOn, true);
  auto after = std::make_shared<CountingPpm>("after", ResourceVector{}, mode::kAlwaysOn);
  pipe.Install(dropper);
  pipe.Install(after);
  sim::Packet pkt;
  auto ctx = MakeContext(pkt);
  pipe.Process(ctx);
  EXPECT_TRUE(ctx.drop);
  EXPECT_EQ(after->seen(), 0);
}

TEST(PipelineTest, FindByNameAndSignature) {
  Pipeline pipe(DefaultSwitchCapacity());
  auto bloom = std::make_shared<boosters::SuspiciousSrcBloomPpm>();
  const PpmSignature sig = bloom->signature();
  pipe.Install(bloom);
  EXPECT_NE(pipe.Find("suspicious_src_bloom"), nullptr);
  EXPECT_EQ(pipe.Find("nonexistent"), nullptr);
  EXPECT_EQ(pipe.FindBySignature(sig), bloom.get());
}

TEST(PipelineTest, ClearResetsResources) {
  Pipeline pipe(DefaultSwitchCapacity());
  pipe.Install(std::make_shared<boosters::ParserPpm>());
  pipe.ActivateMode(mode::kLfaDrop);
  pipe.Clear();
  EXPECT_TRUE(pipe.modules().empty());
  EXPECT_TRUE(pipe.used().IsZero());
  EXPECT_TRUE(pipe.ModeActive(mode::kLfaDrop));  // modes survive reprogramming
}

TEST(FlowTableTest, LookupCreatesAndFinds) {
  FlowTable table(64);
  FlowState* a = table.Lookup(123, kSecond);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->key, 123u);
  a->packets = 7;
  FlowState* again = table.Lookup(123, 2 * kSecond);
  EXPECT_EQ(again->packets, 7u);
  EXPECT_EQ(table.installs(), 1u);
}

TEST(FlowTableTest, LiveCollisionLeavesNewFlowUntracked) {
  FlowTable table(1, /*stale_timeout=*/kSecond);  // every key collides
  FlowState* a = table.Lookup(1, 0);
  ASSERT_NE(a, nullptr);
  a->last_seen = 0;
  // Within the stale timeout the incumbent holds the slot.
  EXPECT_EQ(table.Lookup(2, 500 * kMillisecond), nullptr);
  // After it goes stale the new flow takes over.
  FlowState* b = table.Lookup(2, 2 * kSecond);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->key, 2u);
}

TEST(FlowTableTest, PeekDoesNotInsert) {
  FlowTable table(64);
  EXPECT_EQ(table.Peek(55), nullptr);
  table.Lookup(55, 0);
  EXPECT_NE(table.Peek(55), nullptr);
  EXPECT_EQ(table.installs(), 1u);
}

TEST(FlowTableTest, ForEachVisitsOccupiedOnly) {
  FlowTable table(64);
  table.Lookup(1, 0);
  table.Lookup(2, 0);
  int visited = 0;
  table.ForEach([&](const FlowState&) { ++visited; });
  EXPECT_EQ(visited, 2);
}

TEST(FlowTableTest, ExportImportRoundTrips) {
  FlowTable a(64);
  FlowState* fs = a.Lookup(99, kSecond);
  fs->packets = 10;
  fs->bytes = 5000;
  FlowTable b(64);
  b.ImportWords(a.ExportWords(), 2 * kSecond);
  const FlowState* copy = b.Peek(99);
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(copy->packets, 10u);
  EXPECT_EQ(copy->bytes, 5000u);
}

TEST(TokenBucketTest, EnforcesSustainedRate) {
  TokenBucket bucket(8e6, 10'000);  // 1 MB/s, 10 KB burst
  SimTime now = 0;
  std::uint64_t passed = 0;
  // Offer 2 MB over one second in 1 KB packets.
  for (int i = 0; i < 2000; ++i) {
    now += kSecond / 2000;
    if (bucket.Allow(now, 1000)) passed += 1000;
  }
  // Roughly rate * 1 s + burst.
  EXPECT_NEAR(static_cast<double>(passed), 1e6 + 1e4, 5e4);
}

TEST(TokenBucketTest, BurstAllowsShortOverrun) {
  TokenBucket bucket(8e6, 5000);
  EXPECT_TRUE(bucket.Allow(0, 5000));   // the full burst at once
  EXPECT_FALSE(bucket.Allow(0, 5000));  // but not twice
  // After 5 ms, 5 KB of tokens have accumulated again.
  EXPECT_TRUE(bucket.Allow(5 * kMillisecond, 5000));
}

TEST(TokenBucketTest, SetRateTakesEffect) {
  TokenBucket bucket(8e6, 1000);
  bucket.Allow(0, 1000);  // drain
  bucket.SetRate(80e6);
  EXPECT_DOUBLE_EQ(bucket.rate_bps(), 80e6);
  // At 10 MB/s, 1 KB takes 100 us to accumulate.
  EXPECT_FALSE(bucket.Allow(50 * kMicrosecond, 1000));
  EXPECT_TRUE(bucket.Allow(200 * kMicrosecond, 1000));
}

TEST(PpmTest, SignatureEqualityAndHash) {
  const PpmSignature a{PpmKind::kCountMinSketch, {1024, 3}};
  const PpmSignature b{PpmKind::kCountMinSketch, {1024, 3}};
  const PpmSignature c{PpmKind::kCountMinSketch, {2048, 3}};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(SignatureHash(a), SignatureHash(b));
  EXPECT_NE(SignatureHash(a), SignatureHash(c));
}

TEST(PpmTest, KindNamesAreDistinct) {
  EXPECT_EQ(PpmKindName(PpmKind::kParser), "parser");
  EXPECT_EQ(PpmKindName(PpmKind::kHashPipeTable), "hashpipe_table");
  EXPECT_NE(PpmKindName(PpmKind::kBloomFilter), PpmKindName(PpmKind::kCountMinSketch));
}

}  // namespace
}  // namespace fastflex::dataplane
