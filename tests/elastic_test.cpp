// ElasticOrchestrator tests: scale-up on alarm pressure, lowest-value-first
// shedding under a tightened stage budget, quiet-epoch teardown back to the
// default program, region scoping, reject bookkeeping, elastic-telemetry
// replay identity, and the multi-tenant co-existence acceptance run.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "control/elastic.h"
#include "control/orchestrator.h"
#include "scenarios/hotnets.h"
#include "scenarios/multi_tenant_fig.h"
#include "telemetry/export.h"

namespace fastflex::control {
namespace {

using scenarios::BuildHotnetsTopology;
using scenarios::HotnetsTopology;
using scenarios::SpreadDecoyRoutes;
using scenarios::StartNormalTraffic;
using telemetry::ElasticStats;

// The four-booster default program (13.0 stages with shared components)
// fits a 16-stage budget; syn_mitigation (+3.5) does not until the 1.5-stage
// hop_count_filter is shed.
dataplane::ResourceVector TightCapacity() {
  return dataplane::ResourceVector{16.0, 120.0, 6144.0, 64.0};
}

ElasticPolicy FastPolicy() {
  ElasticPolicy policy;
  policy.epoch = 200 * kMillisecond;
  policy.quiet_epochs = 2;
  policy.placement.switch_capacity = TightCapacity();
  return policy;
}

struct Deployed {
  HotnetsTopology h = BuildHotnetsTopology();
  std::unique_ptr<sim::Network> net;
  std::unique_ptr<FastFlexOrchestrator> orch;
  telemetry::Recorder rec;
  std::unique_ptr<ElasticOrchestrator> elastic;

  explicit Deployed(dataplane::ResourceVector capacity = TightCapacity(),
                    ElasticPolicy policy = FastPolicy(), bool regioned = false) {
    net = std::make_unique<sim::Network>(h.topo, 1);
    net->EnableLinkSampling(10 * kMillisecond);
    auto normal = StartNormalTraffic(*net, h);
    OrchestratorConfig cfg;
    cfg.te = scheduler::TeOptions{.k_paths = 2};
    cfg.boosters = {"lfa_detection", "congestion_reroute", "syn_detection",
                    "hop_count_filter"};
    cfg.protected_dsts = {net->topology().node(h.victim).address};
    cfg.switch_capacity = capacity;
    cfg.placement.switch_capacity = capacity;
    if (regioned) {
      for (NodeId sw : {h.a, h.b, h.e}) cfg.regions[sw] = 1;
      for (NodeId sw : {h.m1, h.m2, h.m3, h.r, h.rv, h.rd}) cfg.regions[sw] = 2;
    }
    orch = std::make_unique<FastFlexOrchestrator>(net.get(), cfg);
    orch->Deploy(normal.demands, [this](sim::Network& n) { SpreadDecoyRoutes(n, h); });
    elastic = std::make_unique<ElasticOrchestrator>(net.get(), orch.get(),
                                                    std::move(policy), &rec);
    elastic->Start();
  }

  void RaiseSyn(NodeId sw, bool activate) {
    orch->agent(sw)->RaiseAlarm(dataplane::attack::kSynFlood,
                                dataplane::mode::kSynDefense, activate);
  }

  std::vector<NodeId> Switches() const {
    std::vector<NodeId> out;
    for (const auto& n : net->topology().nodes()) {
      if (n.kind == sim::NodeKind::kSwitch) out.push_back(n.id);
    }
    return out;
  }
};

TEST(ElasticTest, ScaleUpOnAlarmPressure) {
  Deployed d;
  for (NodeId sw : d.Switches()) {
    EXPECT_FALSE(d.orch->BoosterInstalled(sw, "syn_mitigation"));
  }
  d.RaiseSyn(d.h.a, true);
  d.net->RunUntil(2 * kSecond);

  // Unregioned fabric: region 0 is the sole (global) region of rule 1 (SYN).
  EXPECT_TRUE(d.elastic->RegionScaledUp(1, 0));
  for (NodeId sw : d.Switches()) {
    EXPECT_TRUE(d.orch->BoosterInstalled(sw, "syn_mitigation")) << sw;
    EXPECT_FALSE(d.elastic->loop_installed().at(sw).empty());
  }
  const auto& totals = d.rec.elastic_stats().totals();
  EXPECT_EQ(totals.scale_ups, d.Switches().size());
  EXPECT_GT(totals.epochs, 0u);
  EXPECT_GT(totals.repurposes, 0u);
  EXPECT_GT(totals.replans, 0u);
  // Every install paid the repurposing sequence, never a free flip.
  EXPECT_LE(totals.scale_ups, totals.repurposes * 1);
}

TEST(ElasticTest, ShedsLowestValueBoosterFirstAndStaysInBudget) {
  Deployed d;
  d.RaiseSyn(d.h.a, true);
  d.net->RunUntil(2 * kSecond);

  const auto& stats = d.rec.elastic_stats();
  EXPECT_EQ(stats.totals().sheds, d.Switches().size());
  EXPECT_EQ(stats.totals().install_rejects, 0u);
  EXPECT_EQ(stats.totals().over_budget, 0u);
  for (const auto& e : stats.events()) {
    if (e.action == ElasticStats::Action::kShed) {
      // hop_count_filter (value 25) is the cheapest resident booster; the
      // never-shed floor protects the detectors and reroute.
      EXPECT_EQ(e.booster, "hop_count_filter");
    }
  }
  for (NodeId sw : d.Switches()) {
    EXPECT_FALSE(d.orch->BoosterInstalled(sw, "hop_count_filter")) << sw;
    EXPECT_TRUE(d.orch->BoosterInstalled(sw, "lfa_detection")) << sw;
    EXPECT_TRUE(d.orch->BoosterInstalled(sw, "syn_detection")) << sw;
    const dataplane::Pipeline* pipe = d.orch->pipeline(sw);
    EXPECT_TRUE(pipe->used().FitsIn(pipe->capacity())) << sw;
  }
}

TEST(ElasticTest, QuietEpochsTearDownToDefaultProgram) {
  Deployed d;
  d.RaiseSyn(d.h.a, true);
  d.net->RunUntil(2 * kSecond);
  ASSERT_TRUE(d.elastic->RegionScaledUp(1, 0));
  d.RaiseSyn(d.h.a, false);
  d.net->RunUntil(8 * kSecond);

  EXPECT_FALSE(d.elastic->RegionScaledUp(1, 0));
  for (NodeId sw : d.Switches()) {
    EXPECT_FALSE(d.orch->BoosterInstalled(sw, "syn_mitigation")) << sw;
    auto it = d.elastic->loop_installed().find(sw);
    if (it != d.elastic->loop_installed().end()) EXPECT_TRUE(it->second.empty());
  }
  const auto& totals = d.rec.elastic_stats().totals();
  EXPECT_EQ(totals.teardowns, totals.scale_ups);
  EXPECT_EQ(totals.over_budget, 0u);

  // A second flare-up scales right back up: teardown cleared the slate.
  d.RaiseSyn(d.h.a, true);
  d.net->RunUntil(10 * kSecond);
  EXPECT_TRUE(d.elastic->RegionScaledUp(1, 0));
  EXPECT_EQ(d.rec.elastic_stats().totals().scale_ups, 2 * d.Switches().size());
}

TEST(ElasticTest, RejectsWhenNothingSheddableRemains) {
  // 14 stages: the default program (13.0) fits, but syn_mitigation does not
  // even after shedding hop_count_filter (11.5 + 3.5 = 15) — and everything
  // else sits at or above the never-shed floor.
  Deployed d(dataplane::ResourceVector{14.0, 120.0, 6144.0, 64.0});
  d.RaiseSyn(d.h.a, true);
  d.net->RunUntil(2 * kSecond);

  const auto& stats = d.rec.elastic_stats();
  EXPECT_EQ(stats.totals().install_rejects, d.Switches().size());
  EXPECT_EQ(stats.totals().scale_ups, 0u);
  EXPECT_EQ(stats.totals().over_budget, 0u);
  for (NodeId sw : d.Switches()) {
    EXPECT_FALSE(d.orch->BoosterInstalled(sw, "syn_mitigation")) << sw;
    const dataplane::Pipeline* pipe = d.orch->pipeline(sw);
    EXPECT_TRUE(pipe->used().FitsIn(pipe->capacity())) << sw;
  }
  // Rejected installs are not retried while the pressure persists: no new
  // repurposing blackouts epoch after epoch.
  const std::uint64_t repurposes = stats.totals().repurposes;
  d.net->RunUntil(4 * kSecond);
  EXPECT_EQ(stats.totals().repurposes, repurposes);
  EXPECT_EQ(stats.totals().install_rejects, d.Switches().size());
}

TEST(ElasticTest, ScaleUpScopedToPressuredRegion) {
  Deployed d(TightCapacity(), FastPolicy(), /*regioned=*/true);
  d.RaiseSyn(d.h.a, true);  // h.a sits in region 1
  d.net->RunUntil(2 * kSecond);

  EXPECT_TRUE(d.elastic->RegionScaledUp(1, 1));
  EXPECT_FALSE(d.elastic->RegionScaledUp(1, 2));
  for (NodeId sw : {d.h.a, d.h.b, d.h.e}) {
    EXPECT_TRUE(d.orch->BoosterInstalled(sw, "syn_mitigation")) << sw;
  }
  for (NodeId sw : {d.h.m1, d.h.m2, d.h.m3, d.h.r, d.h.rv, d.h.rd}) {
    EXPECT_FALSE(d.orch->BoosterInstalled(sw, "syn_mitigation")) << sw;
  }
  EXPECT_EQ(d.rec.elastic_stats().totals().scale_ups, 3u);
}

TEST(ElasticTest, ElasticTelemetryReplayIsByteIdentical) {
  auto cycle = [] {
    Deployed d;
    d.net->events().ScheduleAfter(500 * kMillisecond, [&d] { d.RaiseSyn(d.h.a, true); });
    d.net->events().ScheduleAfter(3 * kSecond, [&d] { d.RaiseSyn(d.h.a, false); });
    d.net->RunUntil(8 * kSecond);
    return d.rec.elastic_stats().ToJsonSection();
  };
  const std::string a = cycle();
  const std::string b = cycle();
  EXPECT_FALSE(a.empty());
  EXPECT_NE(a.find("\"scale_up\""), std::string::npos);
  EXPECT_NE(a.find("\"teardown\""), std::string::npos);
  EXPECT_EQ(a, b);
}

TEST(ElasticTest, MultiTenantCoexistenceAcceptance) {
  telemetry::Recorder rec;
  scenarios::MultiTenantOptions opt;
  opt.recorder = &rec;
  const auto r = scenarios::RunMultiTenantFig(opt);

  // LFA tenant (region 1): detector fired, the illusion pair scaled up and
  // dropped attack traffic region-wide.
  EXPECT_GT(r.lfa_alarm_at, 0u);
  EXPECT_GT(r.illusion_drops, 0u);
  EXPECT_DOUBLE_EQ(r.lfa_mode_frac_peak, 1.0);
  // SYN tenant (region 3): the proxy scaled up, cookied the flood, and let
  // legitimate handshakes through.
  EXPECT_GT(r.cookies_sent, 0u);
  EXPECT_GT(r.handshakes_validated, 0u);
  EXPECT_DOUBLE_EQ(r.syn_mode_frac_peak, 1.0);
  EXPECT_GT(r.completed, 0);
  // The capacity fight happened and no switch ever sat over budget.
  EXPECT_GT(r.sheds, 0u);
  EXPECT_EQ(r.over_budget, 0u);
  EXPECT_EQ(r.install_rejects, 0u);
  // Full post-attack retirement, after the attacks stopped.
  EXPECT_TRUE(r.retired);
  EXPECT_EQ(r.teardowns, r.scale_ups);
  EXPECT_GT(r.last_teardown_at, 30 * kSecond);
  // The decision log rode into the exported artifact.
  EXPECT_NE(telemetry::ToJson(rec).find("\"elastic\":"), std::string::npos);
}

}  // namespace
}  // namespace fastflex::control
