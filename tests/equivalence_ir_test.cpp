// Tests for the PPM-implementation equivalence checker: canonicalization
// must erase register naming, instruction order of independent work, dead
// code, constant expression, and commutative operand order — and must NOT
// equate genuinely different functions.
#include <gtest/gtest.h>

#include "analyzer/equivalence_ir.h"

namespace fastflex::analyzer {
namespace {

TEST(EquivalenceIrTest, RegisterRenamingIsInvisible) {
  // y = (src + 5); emit y        vs. same with different register numbers.
  PpmProgram a;
  a.code = {
      {Op::kLoadField, 0, 0, 0, 1},
      {Op::kLoadConst, 1, 0, 0, 5},
      {Op::kAdd, 2, 0, 1, 0},
      {Op::kEmit, 0, 2, 0, 0},
  };
  PpmProgram b;
  b.code = {
      {Op::kLoadField, 7, 0, 0, 1},
      {Op::kLoadConst, 3, 0, 0, 5},
      {Op::kAdd, 9, 7, 3, 0},
      {Op::kEmit, 0, 9, 0, 0},
  };
  EXPECT_TRUE(EquivalentPrograms(a, b));
}

TEST(EquivalenceIrTest, CommutativeOperandOrderIsInvisible) {
  PpmProgram a;
  a.code = {
      {Op::kLoadField, 0, 0, 0, 1},
      {Op::kLoadField, 1, 0, 0, 2},
      {Op::kXor, 2, 0, 1, 0},
      {Op::kEmit, 0, 2, 0, 0},
  };
  PpmProgram b = a;
  b.code[2] = {Op::kXor, 2, 1, 0, 0};  // swapped operands
  EXPECT_TRUE(EquivalentPrograms(a, b));
}

TEST(EquivalenceIrTest, NonCommutativeOrderMatters) {
  PpmProgram a;
  a.code = {
      {Op::kLoadField, 0, 0, 0, 1},
      {Op::kLoadField, 1, 0, 0, 2},
      {Op::kSub, 2, 0, 1, 0},
      {Op::kEmit, 0, 2, 0, 0},
  };
  PpmProgram b = a;
  b.code[2] = {Op::kSub, 2, 1, 0, 0};  // y - x is a different function
  EXPECT_FALSE(EquivalentPrograms(a, b));
}

TEST(EquivalenceIrTest, DeadCodeIsInvisible) {
  PpmProgram a;
  a.code = {
      {Op::kLoadField, 0, 0, 0, 1},
      {Op::kEmit, 0, 0, 0, 0},
  };
  PpmProgram b;
  b.code = {
      {Op::kLoadField, 0, 0, 0, 1},
      {Op::kLoadField, 5, 0, 0, 3},   // dead
      {Op::kHash, 6, 5, 0, 99},       // dead
      {Op::kAdd, 7, 6, 5, 0},         // dead
      {Op::kEmit, 0, 0, 0, 0},
  };
  EXPECT_TRUE(EquivalentPrograms(a, b));
  EXPECT_EQ(LiveInstructionCount(a), 2u);
  EXPECT_EQ(LiveInstructionCount(b), 2u);
}

TEST(EquivalenceIrTest, ConstantExpressionsFold) {
  // emit 6      vs.      emit 2*3 computed at "runtime".
  PpmProgram a;
  a.code = {
      {Op::kLoadConst, 0, 0, 0, 6},
      {Op::kEmit, 0, 0, 0, 0},
  };
  PpmProgram b;
  b.code = {
      {Op::kLoadConst, 0, 0, 0, 2},
      {Op::kLoadConst, 1, 0, 0, 3},
      {Op::kMul, 2, 0, 1, 0},
      {Op::kEmit, 0, 2, 0, 0},
  };
  EXPECT_TRUE(EquivalentPrograms(a, b));
}

TEST(EquivalenceIrTest, FoldedSelectOnConstantCondition) {
  // if (1) emit tag else emit 0  ==  emit tag.
  PpmProgram a;
  a.code = {
      {Op::kLoadConst, 0, 0, 0, 1},   // cond = 1
      {Op::kLoadConst, 1, 0, 0, 42},  // then
      {Op::kLoadConst, 2, 0, 0, 0},   // else
      {Op::kSelect, 3, 0, 1, 2},
      {Op::kEmit, 0, 3, 0, 0},
  };
  PpmProgram b;
  b.code = {
      {Op::kLoadConst, 0, 0, 0, 42},
      {Op::kEmit, 0, 0, 0, 0},
  };
  EXPECT_TRUE(EquivalentPrograms(a, b));
}

TEST(EquivalenceIrTest, DifferentFieldsDiffer) {
  PpmProgram a = MakeSketchUpdateProgram(/*field=*/1, 0x5eed1, 1024);
  PpmProgram b = MakeSketchUpdateProgram(/*field=*/2, 0x5eed1, 1024);
  EXPECT_FALSE(EquivalentPrograms(a, b));
}

TEST(EquivalenceIrTest, DifferentSeedsOrWidthsDiffer) {
  const auto base = MakeSketchUpdateProgram(1, 100, 1024);
  EXPECT_FALSE(EquivalentPrograms(base, MakeSketchUpdateProgram(1, 101, 1024)));
  EXPECT_FALSE(EquivalentPrograms(base, MakeSketchUpdateProgram(1, 100, 2048)));
  EXPECT_TRUE(EquivalentPrograms(base, MakeSketchUpdateProgram(1, 100, 1024)));
}

TEST(EquivalenceIrTest, IndependentInstructionOrderIsInvisible) {
  // Two independent hash chains computed in either order.
  PpmProgram a;
  a.code = {
      {Op::kLoadField, 0, 0, 0, 1},
      {Op::kHash, 1, 0, 0, 7},
      {Op::kLoadField, 2, 0, 0, 2},
      {Op::kHash, 3, 2, 0, 9},
      {Op::kEmit, 0, 1, 0, 0},
      {Op::kEmit, 0, 3, 0, 1},
  };
  PpmProgram b;
  b.code = {
      {Op::kLoadField, 2, 0, 0, 2},
      {Op::kHash, 3, 2, 0, 9},
      {Op::kLoadField, 0, 0, 0, 1},
      {Op::kHash, 1, 0, 0, 7},
      {Op::kEmit, 0, 1, 0, 0},
      {Op::kEmit, 0, 3, 0, 1},
  };
  EXPECT_TRUE(EquivalentPrograms(a, b));
}

TEST(EquivalenceIrTest, EmitOrderMatters) {
  PpmProgram a;
  a.code = {
      {Op::kLoadField, 0, 0, 0, 1},
      {Op::kLoadField, 1, 0, 0, 2},
      {Op::kEmit, 0, 0, 0, 0},
      {Op::kEmit, 0, 1, 0, 1},
  };
  PpmProgram b = a;
  std::swap(b.code[2], b.code[3]);
  EXPECT_FALSE(EquivalentPrograms(a, b));
}

TEST(EquivalenceIrTest, BloomProbesEquivalentAcrossRewrites) {
  // The "two boosters implement the same bloom probe differently" case: b
  // interleaves dead bookkeeping and renames everything.
  PpmProgram a = MakeBloomProbeProgram(1, 50, 3, 4096);
  PpmProgram b = MakeBloomProbeProgram(1, 50, 3, 4096);
  // Rename all registers in b by +10 and append dead code.
  for (auto& ins : b.code) {
    if (ins.op != Op::kEmit) ins.dst += 10;
    if (ins.op != Op::kLoadField && ins.op != Op::kLoadConst) {
      ins.a += 10;
      if (ins.op != Op::kHash && ins.op != Op::kShr) ins.b += 10;
    } else if (ins.op == Op::kEmit) {
      ins.a += 10;
    }
  }
  // Fix emit sources (emit reads `a`).
  for (auto& ins : b.code) {
    if (ins.op == Op::kEmit) ins.a += ins.a < 10 ? 10 : 0;
  }
  b.code.insert(b.code.begin() + 2, {Op::kLoadConst, 99, 0, 0, 0xdead});
  EXPECT_TRUE(EquivalentPrograms(a, b));
}

TEST(EquivalenceIrTest, ThresholdTagBuilderParamsDistinguish) {
  EXPECT_TRUE(EquivalentPrograms(MakeThresholdTagProgram(100, 80),
                                 MakeThresholdTagProgram(100, 80)));
  EXPECT_FALSE(EquivalentPrograms(MakeThresholdTagProgram(100, 80),
                                  MakeThresholdTagProgram(200, 80)));
  EXPECT_FALSE(EquivalentPrograms(MakeThresholdTagProgram(100, 80),
                                  MakeThresholdTagProgram(100, 95)));
}

TEST(EquivalenceIrTest, UninitializedRegistersReadAsZero) {
  PpmProgram a;
  a.code = {
      {Op::kLoadField, 0, 0, 0, 1},
      {Op::kAdd, 1, 0, 5, 0},  // register 5 never written: reads 0
      {Op::kEmit, 0, 1, 0, 0},
  };
  PpmProgram b;
  b.code = {
      {Op::kLoadField, 0, 0, 0, 1},
      {Op::kLoadConst, 5, 0, 0, 0},
      {Op::kAdd, 1, 0, 5, 0},
      {Op::kEmit, 0, 1, 0, 0},
  };
  EXPECT_TRUE(EquivalentPrograms(a, b));
}

}  // namespace
}  // namespace fastflex::analyzer
