// Stress test for the discrete-event engine: one million interleaved
// ScheduleAt / ScheduleAfter calls must fire in strict (time, insertion
// sequence) order, with past-time schedules clamped to Now().
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event_queue.h"
#include "util/rng.h"
#include "util/types.h"

namespace fastflex::sim {
namespace {

TEST(EventQueueStress, MillionEventsFireInTimeSeqOrder) {
  constexpr std::size_t kEvents = 1'000'000;

  EventQueue q;
  Rng rng(0xabcdef12345ULL);

  struct Firing {
    SimTime t;        // queue time when the callback ran
    std::uint64_t id; // insertion id
  };
  std::vector<Firing> firings;
  firings.reserve(kEvents);
  // expected_t[id]: the time the event must fire at, accounting for the
  // clamp of past-time ScheduleAt calls to Now()-at-insertion.
  std::vector<SimTime> expected_t;
  expected_t.reserve(kEvents);

  // Seed a batch up front, then have roughly half the events schedule
  // follow-ups from inside callbacks so insertion interleaves with
  // execution (the regime where heap/seq bugs hide).  `schedule_random`
  // outlives every queued callback, so capturing it by reference is safe.
  std::uint64_t next_id = 0;
  const SimTime horizon = 1000 * kSecond;

  std::function<void()> schedule_random = [&] {
    const std::uint64_t id = next_id++;
    const bool use_after = (rng.Next() & 1) != 0;
    const bool chain = (rng.Next() & 1) != 0;
    SimTime target;
    auto body = [&q, &firings, &schedule_random, &next_id, id, chain] {
      firings.push_back({q.Now(), id});
      // Chain a follow-up while we still have budget, from inside the
      // callback, so scheduling interleaves with dispatch.
      if (chain && next_id < kEvents) schedule_random();
    };
    if (use_after) {
      const SimTime delay = static_cast<SimTime>(rng.Next() % kSecond);
      target = q.Now() + delay;
      q.ScheduleAfter(delay, std::move(body));
    } else {
      // Absolute times drawn across the whole horizon — many will be in
      // the past once the clock has advanced, exercising the clamp.
      const SimTime t = static_cast<SimTime>(rng.Next() % horizon);
      target = t < q.Now() ? q.Now() : t;
      q.ScheduleAt(t, std::move(body));
    }
    expected_t.push_back(target);
  };

  for (std::size_t i = 0; i < kEvents / 2; ++i) schedule_random();
  q.RunAll();
  // Top up: callbacks only chain probabilistically, so insert the
  // remainder directly (the queue is idle, Now() is at the last firing).
  while (next_id < kEvents) schedule_random();
  q.RunAll();

  ASSERT_EQ(firings.size(), next_id);
  ASSERT_EQ(q.processed(), next_id);
  EXPECT_TRUE(q.Empty());
  EXPECT_GE(firings.size(), kEvents / 2);

  // Every event fired exactly at its expected (clamped) time...
  std::vector<bool> seen(next_id, false);
  for (const auto& f : firings) {
    ASSERT_LT(f.id, next_id);
    EXPECT_FALSE(seen[f.id]) << "event " << f.id << " fired twice";
    seen[f.id] = true;
    ASSERT_EQ(f.t, expected_t[f.id]) << "event " << f.id;
  }

  // ...and the global firing order is non-decreasing in time, with ties
  // broken by insertion sequence (ids are assigned in insertion order).
  for (std::size_t i = 1; i < firings.size(); ++i) {
    const auto& prev = firings[i - 1];
    const auto& cur = firings[i];
    ASSERT_GE(cur.t, prev.t) << "time went backwards at firing " << i;
    if (cur.t == prev.t && expected_t[prev.id] == expected_t[cur.id]) {
      // Same timestamp: an event inserted earlier must not fire after one
      // inserted later unless the later one was inserted mid-dispatch at
      // an already-passed time (clamped to exactly Now()).
      if (cur.id < prev.id) {
        ADD_FAILURE() << "insertion order violated at t=" << cur.t << ": id "
                      << prev.id << " fired before id " << cur.id;
        break;
      }
    }
  }
}

TEST(EventQueueStress, PastTimeScheduleClampsToNow) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(10 * kSecond, [&] {
    order.push_back(0);
    // Scheduled "in the past" from t=10s: must clamp to Now() and still
    // run, after already-queued same-time events inserted earlier.
    q.ScheduleAt(3 * kSecond, [&] { order.push_back(2); });
  });
  q.ScheduleAt(10 * kSecond, [&] { order.push_back(1); });
  q.RunAll();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 2);
  EXPECT_EQ(q.Now(), 10 * kSecond);
}

}  // namespace
}  // namespace fastflex::sim
