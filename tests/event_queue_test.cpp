// Discrete-event engine tests: ordering, determinism, re-entrancy.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"

namespace fastflex::sim {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(30, [&] { order.push_back(3); });
  q.ScheduleAt(10, [&] { order.push_back(1); });
  q.ScheduleAt(20, [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.Now(), 30);
}

TEST(EventQueueTest, SimultaneousEventsRunInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) q.ScheduleAt(5, [&order, i] { order.push_back(i); });
  q.RunAll();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, RunUntilStopsAtBoundaryInclusive) {
  EventQueue q;
  int ran = 0;
  q.ScheduleAt(10, [&] { ++ran; });
  q.ScheduleAt(20, [&] { ++ran; });
  q.ScheduleAt(21, [&] { ++ran; });
  q.RunUntil(20);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(q.Now(), 20);
  EXPECT_EQ(q.Pending(), 1u);
}

TEST(EventQueueTest, TimeAdvancesToUntilEvenWhenIdle) {
  EventQueue q;
  q.RunUntil(1000);
  EXPECT_EQ(q.Now(), 1000);
}

TEST(EventQueueTest, PastSchedulingClampsToNow) {
  EventQueue q;
  q.ScheduleAt(100, [] {});
  q.RunUntil(100);
  int ran = 0;
  q.ScheduleAt(50, [&] { ++ran; });  // in the past; clamps to now=100
  q.RunUntil(100);
  EXPECT_EQ(ran, 1);
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents) {
  EventQueue q;
  std::vector<SimTime> fired;
  std::function<void()> chain = [&] {
    fired.push_back(q.Now());
    if (fired.size() < 5) q.ScheduleAfter(10, chain);
  };
  q.ScheduleAt(0, chain);
  q.RunUntil(1000);
  EXPECT_EQ(fired, (std::vector<SimTime>{0, 10, 20, 30, 40}));
}

TEST(EventQueueTest, ScheduleAfterIsRelativeToNow) {
  EventQueue q;
  SimTime at = -1;
  q.ScheduleAt(100, [&] { q.ScheduleAfter(5, [&] { at = q.Now(); }); });
  q.RunAll();
  EXPECT_EQ(at, 105);
}

TEST(EventQueueTest, SameTimeFifoSurvivesInterleavedPops) {
  // The (t, seq) tie-break makes the pop order a pure function of the
  // schedule calls: same-time events stay FIFO even when pops rearrange
  // the heap between the pushes.
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(5, [&] { order.push_back(0); });
  q.ScheduleAt(1, [] {});  // popped first, perturbing heap internals
  q.ScheduleAt(5, [&] { order.push_back(1); });
  q.RunUntil(1);
  q.ScheduleAt(5, [&] { order.push_back(2); });
  q.ScheduleAt(5, [&] { order.push_back(3); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueueTest, ScheduleBulkInterleavesWithSinglesInCallOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(10, [&] { order.push_back(0); });  // before the batch
  std::vector<EventQueue::TimedEvent> batch;
  for (int i = 1; i <= 3; ++i) {
    batch.push_back({10, [&order, i] { order.push_back(i); }});
  }
  batch.push_back({5, [&order] { order.push_back(100); }});
  q.ScheduleBulk(std::move(batch));
  q.ScheduleAt(10, [&] { order.push_back(4); });  // after the batch
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{100, 0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, ScheduleBulkMatchesSingleAdmission) {
  // Property: bulk admission (Floyd rebuild path) pops in exactly the
  // order per-event admission (sift-up path) would.
  std::vector<SimTime> times;
  for (int i = 0; i < 200; ++i) times.push_back((i * 37) % 50);

  std::vector<int> single_order;
  EventQueue single;
  for (int i = 0; i < 200; ++i) {
    single.ScheduleAt(times[static_cast<std::size_t>(i)],
                      [&single_order, i] { single_order.push_back(i); });
  }
  single.RunAll();

  std::vector<int> bulk_order;
  EventQueue bulk;
  std::vector<EventQueue::TimedEvent> batch;
  for (int i = 0; i < 200; ++i) {
    batch.push_back({times[static_cast<std::size_t>(i)],
                     [&bulk_order, i] { bulk_order.push_back(i); }});
  }
  bulk.ScheduleBulk(std::move(batch));
  bulk.RunAll();

  EXPECT_EQ(single_order, bulk_order);
}

TEST(EventQueueTest, ScheduleBulkClampsPastTimesToNow) {
  EventQueue q;
  q.ScheduleAt(100, [] {});
  q.RunAll();
  ASSERT_EQ(q.Now(), 100);
  std::vector<SimTime> fired;
  std::vector<EventQueue::TimedEvent> batch;
  batch.push_back({20, [&] { fired.push_back(q.Now()); }});  // in the past
  batch.push_back({150, [&] { fired.push_back(q.Now()); }});
  q.ScheduleBulk(std::move(batch));
  q.RunAll();
  EXPECT_EQ(fired, (std::vector<SimTime>{100, 150}));
}

TEST(EventQueueTest, ReserveDoesNotDisturbPendingEvents) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(2, [&] { order.push_back(2); });
  q.ScheduleAt(1, [&] { order.push_back(1); });
  q.Reserve(4096);
  q.ScheduleAt(3, [&] { order.push_back(3); });
  EXPECT_EQ(q.Pending(), 3u);
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, ProcessedCountsEvents) {
  EventQueue q;
  for (int i = 0; i < 7; ++i) q.ScheduleAt(i, [] {});
  q.RunAll();
  EXPECT_EQ(q.processed(), 7u);
}

}  // namespace
}  // namespace fastflex::sim
