// Discrete-event engine tests: ordering, determinism, re-entrancy.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"

namespace fastflex::sim {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(30, [&] { order.push_back(3); });
  q.ScheduleAt(10, [&] { order.push_back(1); });
  q.ScheduleAt(20, [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.Now(), 30);
}

TEST(EventQueueTest, SimultaneousEventsRunInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) q.ScheduleAt(5, [&order, i] { order.push_back(i); });
  q.RunAll();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, RunUntilStopsAtBoundaryInclusive) {
  EventQueue q;
  int ran = 0;
  q.ScheduleAt(10, [&] { ++ran; });
  q.ScheduleAt(20, [&] { ++ran; });
  q.ScheduleAt(21, [&] { ++ran; });
  q.RunUntil(20);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(q.Now(), 20);
  EXPECT_EQ(q.Pending(), 1u);
}

TEST(EventQueueTest, TimeAdvancesToUntilEvenWhenIdle) {
  EventQueue q;
  q.RunUntil(1000);
  EXPECT_EQ(q.Now(), 1000);
}

TEST(EventQueueTest, PastSchedulingClampsToNow) {
  EventQueue q;
  q.ScheduleAt(100, [] {});
  q.RunUntil(100);
  int ran = 0;
  q.ScheduleAt(50, [&] { ++ran; });  // in the past; clamps to now=100
  q.RunUntil(100);
  EXPECT_EQ(ran, 1);
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents) {
  EventQueue q;
  std::vector<SimTime> fired;
  std::function<void()> chain = [&] {
    fired.push_back(q.Now());
    if (fired.size() < 5) q.ScheduleAfter(10, chain);
  };
  q.ScheduleAt(0, chain);
  q.RunUntil(1000);
  EXPECT_EQ(fired, (std::vector<SimTime>{0, 10, 20, 30, 40}));
}

TEST(EventQueueTest, ScheduleAfterIsRelativeToNow) {
  EventQueue q;
  SimTime at = -1;
  q.ScheduleAt(100, [&] { q.ScheduleAfter(5, [&] { at = q.Now(); }); });
  q.RunAll();
  EXPECT_EQ(at, 105);
}

TEST(EventQueueTest, ProcessedCountsEvents) {
  EventQueue q;
  for (int i = 0; i < 7; ++i) q.ScheduleAt(i, [] {});
  q.RunAll();
  EXPECT_EQ(q.processed(), 7u);
}

}  // namespace
}  // namespace fastflex::sim
