// Experiment-runner tests: sweep determinism across worker counts, per-cell
// seed independence, packet-pool recycling hygiene, and per-cell error
// containment.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/runner.h"
#include "exp/sweep.h"
#include "sim/packet.h"
#include "sim/packet_pool.h"
#include "telemetry/int_record.h"
#include "util/rng.h"

namespace fastflex::exp {
namespace {

// A small real grid: 2 defenses x 2 replicas, 8 s of sim time.  Enough
// discrete events (~hundreds of thousands) that any nondeterminism in the
// parallel path would have astronomically small odds of escaping notice.
SweepSpec SmallFig3Spec() {
  Fig3GridOptions grid;
  grid.defenses = {scenarios::DefenseKind::kNone,
                   scenarios::DefenseKind::kFastFlex};
  grid.seeds_per_defense = 2;
  grid.run.duration = 8 * kSecond;
  grid.attack_at = 3 * kSecond;
  grid.attack_flows = 30;
  return BuildFig3Sweep("unit_grid", 42, grid);
}

TEST(SweepRunnerTest, ReportIsBitIdenticalAcrossThreadCounts) {
  const SweepSpec spec = SmallFig3Spec();
  const std::string one = Runner(RunnerOptions{.threads = 1}).Run(spec).ToJson();
  const std::string four = Runner(RunnerOptions{.threads = 4}).Run(spec).ToJson();
  const std::string eight = Runner(RunnerOptions{.threads = 8}).Run(spec).ToJson();
  EXPECT_EQ(one, four);
  EXPECT_EQ(one, eight);
  // And the artifact is not trivially empty: every cell produced a summary.
  const SweepReport report = Runner(RunnerOptions{.threads = 8}).Run(spec);
  EXPECT_EQ(report.ok_cells(), spec.cells.size());
  EXPECT_EQ(report.ToJson(), one);
  for (const auto& c : report.cells) {
    EXPECT_NE(c.artifact_json.find("events_processed"), std::string::npos);
  }
}

TEST(SweepRunnerTest, CellsAreIndexOrderedRegardlessOfCompletionOrder) {
  // Cells with wildly different costs: later (cheap) cells finish before
  // earlier (expensive) ones on a parallel run, but the report stays
  // index-ordered.
  SweepSpec spec;
  spec.name = "order";
  spec.base_seed = 7;
  for (int i = 0; i < 8; ++i) {
    const bool slow = i < 2;
    spec.cells.push_back(SweepCell{
        "cell" + std::to_string(i), [slow](std::uint64_t seed) {
          Rng rng(seed);
          std::uint64_t acc = 0;
          const int spins = slow ? 2'000'000 : 10;
          for (int s = 0; s < spins; ++s) acc += rng.Next() >> 60;
          return "{\"acc\": " + std::to_string(acc) + "}";
        }});
  }
  const SweepReport report = Runner(RunnerOptions{.threads = 8}).Run(spec);
  ASSERT_EQ(report.cells.size(), 8u);
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    EXPECT_EQ(report.cells[i].index, i);
    EXPECT_EQ(report.cells[i].name, "cell" + std::to_string(i));
    EXPECT_EQ(report.cells[i].seed, CellSeed(7, i));
  }
}

TEST(CellSeedTest, SeedsAreUniqueAcrossCellsAndAdjacentBases) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t base : {1ull, 2ull, 42ull, 0xdeadbeefull}) {
    for (std::size_t i = 0; i < 512; ++i) seen.insert(CellSeed(base, i));
  }
  EXPECT_EQ(seen.size(), 4u * 512u);
  // Cell 0 is not the base seed itself (the base may seed something else).
  EXPECT_NE(CellSeed(1, 0), 1u);
}

TEST(CellSeedTest, PerCellRngStreamsAreIndependent) {
  // Adjacent cells' generators must not produce shifted copies of one
  // stream: compare windows of draws pairwise.
  Rng a(CellSeed(9, 0));
  Rng b(CellSeed(9, 1));
  std::vector<std::uint64_t> da, db;
  for (int i = 0; i < 256; ++i) {
    da.push_back(a.Next());
    db.push_back(b.Next());
  }
  int collisions = 0;
  for (std::uint64_t x : da) {
    for (std::uint64_t y : db) {
      if (x == y) ++collisions;
    }
  }
  EXPECT_EQ(collisions, 0);
}

TEST(PacketPoolTest, RecycledSlotIsPristine) {
  sim::PacketPool pool;
  const sim::PacketPool::Handle h = pool.Acquire();
  sim::Packet& p = *pool.Get(h);
  p.kind = sim::PacketKind::kProbe;
  p.flow = 99;
  p.src = 7;
  p.dst = 8;
  p.ttl = 3;
  p.size_bytes = 64;
  p.seq = 1234;
  p.SetTag(sim::tag::kSuspicion, 77);
  p.SetTag(sim::tag::kSackBitmap, 0xff);
  p.probe = std::make_shared<sim::ProbePayload>();
  p.int_stack.GetOrCreate().Push(telemetry::IntHopRecord{});
  pool.Release(h);

  // LIFO freelist: the next acquire hands the same slot back — scrubbed.
  const sim::PacketPool::Handle h2 = pool.Acquire();
  EXPECT_EQ(h2, h);
  const sim::Packet& q = *pool.Get(h2);
  EXPECT_EQ(q.kind, sim::PacketKind::kData);
  EXPECT_EQ(q.flow, kInvalidFlow);
  EXPECT_EQ(q.src, 0u);
  EXPECT_EQ(q.dst, 0u);
  EXPECT_EQ(q.ttl, 64);
  EXPECT_EQ(q.size_bytes, 1500u);
  EXPECT_EQ(q.seq, 0u);
  EXPECT_TRUE(q.tags.empty());
  EXPECT_FALSE(q.HasTag(sim::tag::kSuspicion));
  EXPECT_EQ(q.probe, nullptr);
  EXPECT_FALSE(static_cast<bool>(q.int_stack));
}

TEST(PacketPoolTest, StatsTrackAcquiresRecyclesAndInFlight) {
  sim::PacketPool pool;
  const auto a = pool.Acquire();
  const auto b = pool.Acquire();
  EXPECT_EQ(pool.acquires(), 2u);
  EXPECT_EQ(pool.recycled(), 0u);
  EXPECT_EQ(pool.slots(), 2u);
  EXPECT_EQ(pool.in_flight(), 2u);
  pool.Release(a);
  EXPECT_EQ(pool.in_flight(), 1u);
  const auto c = pool.Acquire();
  EXPECT_EQ(c, a);  // recycled, not grown
  EXPECT_EQ(pool.acquires(), 3u);
  EXPECT_EQ(pool.recycled(), 1u);
  EXPECT_EQ(pool.slots(), 2u);
  EXPECT_EQ(pool.in_flight(), 2u);
  pool.Release(b);
  pool.Release(c);
  EXPECT_EQ(pool.in_flight(), 0u);
}

TEST(SweepRunnerTest, CrashingCellIsContained) {
  SweepSpec spec;
  spec.name = "contains_errors";
  spec.base_seed = 3;
  for (int i = 0; i < 6; ++i) {
    spec.cells.push_back(SweepCell{
        "c" + std::to_string(i), [i](std::uint64_t) -> std::string {
          if (i == 2) throw std::runtime_error("cell exploded");
          return "{\"ok\": " + std::to_string(i) + "}";
        }});
  }
  const SweepReport report = Runner(RunnerOptions{.threads = 3}).Run(spec);
  EXPECT_EQ(report.ok_cells(), 5u);
  EXPECT_FALSE(report.cells[2].ok);
  EXPECT_EQ(report.cells[2].error, "cell exploded");
  EXPECT_TRUE(report.cells[2].artifact_json.empty());
  for (std::size_t i = 0; i < 6; ++i) {
    if (i == 2) continue;
    EXPECT_TRUE(report.cells[i].ok) << i;
  }
  // The error cell serializes with an "error" field, not an artifact.
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"error\": \"cell exploded\""), std::string::npos);
}

TEST(SweepReportTest, JsonEscapesAndRoundTripsStructure) {
  SweepSpec spec;
  spec.name = "quote\"and\\slash";
  spec.base_seed = 1;
  spec.cells.push_back(SweepCell{
      "only", [](std::uint64_t) -> std::string {
        throw std::runtime_error("line1\nline2\ttab");
      }});
  const SweepReport report = Runner(RunnerOptions{.threads = 1}).Run(spec);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"quote\\\"and\\\\slash\""), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2\\ttab"), std::string::npos);
  EXPECT_EQ(json.find('\t'), std::string::npos);
}

}  // namespace
}  // namespace fastflex::exp
