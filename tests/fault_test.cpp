// Fault-injection and survival tests: deterministic fault plans, injector
// physics, crash-during-flood mode reconvergence, link-flap resilience, and
// bit-identical fault telemetry under replay.
#include <gtest/gtest.h>

#include "control/orchestrator.h"
#include "control/routes.h"
#include "fault/fault.h"
#include "fault/injector.h"
#include "scenarios/builder.h"
#include "scenarios/faulty_fig3.h"
#include "scenarios/hotnets.h"
#include "telemetry/export.h"

namespace fastflex {
namespace {

using telemetry::FaultRecordKind;

TEST(FaultPlanTest, RandomIsDeterministicAndFabricScoped) {
  const auto h = scenarios::BuildHotnetsTopology();
  fault::FaultPlan::RandomOptions opts;
  opts.link_downs = 3;
  opts.switch_crashes = 2;
  opts.control_losses = 2;
  opts.corruptions = 1;

  const auto a = fault::FaultPlan::Random(h.topo, opts, 42);
  const auto b = fault::FaultPlan::Random(h.topo, opts, 42);
  ASSERT_EQ(a.events().size(), 8u);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    const auto& ea = a.events()[i];
    const auto& eb = b.events()[i];
    EXPECT_EQ(ea.at, eb.at);
    EXPECT_EQ(ea.kind, eb.kind);
    EXPECT_EQ(ea.link, eb.link);
    EXPECT_EQ(ea.node, eb.node);
    EXPECT_EQ(ea.duration, eb.duration);
    EXPECT_DOUBLE_EQ(ea.probability, eb.probability);

    // Plan-wide invariants: times in window, durations/probabilities in
    // range, and only the switch fabric is ever touched.
    EXPECT_GE(ea.at, opts.start);
    EXPECT_LT(ea.at, opts.end);
    if (ea.kind == fault::FaultKind::kSwitchCrash) {
      EXPECT_EQ(h.topo.node(ea.node).kind, sim::NodeKind::kSwitch);
    } else {
      const auto& link = h.topo.link(ea.link);
      EXPECT_EQ(h.topo.node(link.from).kind, sim::NodeKind::kSwitch);
      EXPECT_EQ(h.topo.node(link.to).kind, sim::NodeKind::kSwitch);
    }
    EXPECT_GE(ea.duration, opts.min_duration);
    EXPECT_LE(ea.duration, opts.max_duration);
  }

  // A different seed lands on a different plan.
  const auto c = fault::FaultPlan::Random(h.topo, opts, 43);
  bool differs = false;
  for (std::size_t i = 0; i < c.events().size(); ++i) {
    differs |= c.events()[i].at != a.events()[i].at ||
               c.events()[i].link != a.events()[i].link ||
               c.events()[i].node != a.events()[i].node;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlanTest, NoSwitchFabricMeansEmptyPlan) {
  sim::Topology t;
  const NodeId sw = t.AddNode(sim::NodeKind::kSwitch, "sw");
  const NodeId h1 = t.AddNode(sim::NodeKind::kHost, "h1");
  const NodeId h2 = t.AddNode(sim::NodeKind::kHost, "h2");
  t.AddDuplexLink(sw, h1, 100e6, kMillisecond, 200'000);
  t.AddDuplexLink(sw, h2, 100e6, kMillisecond, 200'000);
  const auto plan = fault::FaultPlan::Random(t, {}, 1);
  EXPECT_TRUE(plan.empty());
}

TEST(FaultInjectorTest, LinkRepairRestoresService) {
  sim::Topology t;
  const NodeId s1 = t.AddNode(sim::NodeKind::kSwitch, "s1");
  const NodeId s2 = t.AddNode(sim::NodeKind::kSwitch, "s2");
  const NodeId ha = t.AddNode(sim::NodeKind::kHost, "ha");
  const NodeId hb = t.AddNode(sim::NodeKind::kHost, "hb");
  t.AddDuplexLink(ha, s1, 100e6, kMillisecond, 200'000);
  const LinkId fabric = t.AddDuplexLink(s1, s2, 100e6, kMillisecond, 200'000);
  t.AddDuplexLink(s2, hb, 100e6, kMillisecond, 200'000);

  sim::Network net(t, 1);
  control::InstallDstRoutes(net);
  sim::UdpParams udp;
  udp.rate_bps = 2e6;
  const FlowId flow = net.StartUdpFlow(ha, hb, udp, 0);

  telemetry::Recorder rec;
  fault::FaultPlan plan;
  plan.LinkDown(2 * kSecond, fabric, /*repair_after=*/1 * kSecond);
  fault::FaultInjector injector(&net, std::move(plan));
  injector.set_telemetry(&rec);
  injector.Arm();

  net.RunUntil(2 * kSecond + 10 * kMillisecond);
  const auto before = net.flow_stats(flow).delivered_bytes;
  EXPECT_GT(before, 0u);
  // The cut blackholes the flow for the full second...
  net.RunUntil(3 * kSecond);
  EXPECT_EQ(net.flow_stats(flow).delivered_bytes, before);
  // ...and repair restores delivery.
  net.RunUntil(5 * kSecond);
  EXPECT_GT(net.flow_stats(flow).delivered_bytes, before);

  EXPECT_EQ(injector.injected(), 1u);
  EXPECT_EQ(injector.repaired(), 1u);
  const auto& tl = rec.fault_timeline();
  EXPECT_EQ(tl.CountOf(FaultRecordKind::kLinkDown), 1u);
  EXPECT_EQ(tl.CountOf(FaultRecordKind::kLinkUp), 1u);
  EXPECT_EQ(tl.FirstOf(FaultRecordKind::kLinkDown), 2 * kSecond);
  EXPECT_EQ(tl.FirstOf(FaultRecordKind::kLinkUp), 3 * kSecond);
}

TEST(ModeProtocolFaultTest, CrashDuringFloodReconverges) {
  // M2 crashes while a mode flood is in flight, missing both the flood and
  // its hardening retry.  On reboot the sync exchange must (a) restore the
  // mode bit from the neighbors and (b) fast-forward M2's epoch counter
  // past its own pre-crash floods so fresh alarms are not mistaken for
  // duplicates.
  scenarios::HotnetsTopology h = scenarios::BuildHotnetsTopology();
  sim::Network net(h.topo, 1);
  net.EnableLinkSampling(10 * kMillisecond);
  auto normal = scenarios::StartNormalTraffic(net, h);
  control::FastFlexOrchestrator orch(&net, {});
  orch.Deploy(normal.demands,
              [&h](sim::Network& n) { scenarios::SpreadDecoyRoutes(n, h); });

  // Two pre-crash floods from M2 itself: epochs 1 and 2 under origin M2.
  net.events().ScheduleAt(100 * kMillisecond, [&] {
    orch.agent(h.m2)->RaiseAlarm(dataplane::attack::kLinkFlooding,
                                 dataplane::mode::kLfaObfuscate, true);
  });
  net.events().ScheduleAt(200 * kMillisecond, [&] {
    orch.agent(h.m2)->RaiseAlarm(dataplane::attack::kVolumetricDdos,
                                 dataplane::mode::kVolumetricFilter, true);
  });

  fault::FaultPlan plan;
  plan.SwitchCrash(400 * kMillisecond, h.m2, /*reboot_after=*/400 * kMillisecond);
  fault::FaultInjector injector(&net, std::move(plan));
  injector.set_reboot_handler([&](NodeId sw) { orch.HandleSwitchReboot(sw); });
  injector.Arm();

  // While M2 is dark, A raises the LFA alarm: flood + retry both miss M2.
  net.events().ScheduleAt(500 * kMillisecond, [&] {
    orch.agent(h.a)->RaiseAlarm(dataplane::attack::kLinkFlooding,
                                dataplane::mode::kLfaReroute, true);
  });

  net.RunUntil(2 * kSecond);

  // Rebooted switch re-learned the mode it missed, from its neighbors.
  EXPECT_TRUE(orch.pipeline(h.m2)->ModeActive(dataplane::mode::kLfaReroute));
  EXPECT_EQ(orch.agent(h.m2)->resyncs(), 1u);
  // Epoch fast-forward: reboot reset the counter to 1, the sync request
  // consumed one epoch, and the echoed pre-crash epoch (2) pushed it past
  // both pre-crash floods.
  EXPECT_EQ(orch.agent(h.m2)->next_epoch(), 3u);
  // M2's own pre-crash assertions are replayed back to it as well: the
  // fabric still enforces those modes, and the defense only works if the
  // rebooted switch re-adopts the fabric's posture rather than waiting for
  // its re-armed detector to re-fire.
  EXPECT_TRUE(orch.pipeline(h.m2)->ModeActive(dataplane::mode::kLfaObfuscate));
  EXPECT_TRUE(orch.pipeline(h.m2)->ModeActive(dataplane::mode::kVolumetricFilter));
  // Every live switch still holds A's mode.
  EXPECT_DOUBLE_EQ(orch.FractionModeActive(dataplane::mode::kLfaReroute), 1.0);
}

TEST(ScenarioFaultTest, LinkFlapDoesNotWedge) {
  // Three rapid down/up flaps of the critical link in the middle of a
  // mitigated LFA: the defense must neither wedge (mode bits lost) nor
  // blackhole (failover keeps packets moving while the link is dark).
  fault::FaultPlan plan;
  {
    // Builder topology ids are deterministic; probe a throwaway copy.
    const auto ids = scenarios::BuildHotnetsTopology();
    plan.LinkDown(10 * kSecond, ids.critical1, 500 * kMillisecond);
    plan.LinkDown(12 * kSecond, ids.critical1, 500 * kMillisecond);
    plan.LinkDown(14 * kSecond, ids.critical1, 500 * kMillisecond);
  }
  auto boosters = boosters::DefaultBoosterSet();
  boosters.push_back("fast_failover");
  auto s = scenarios::ScenarioBuilder()
               .Seed(1)
               .Defense(scenarios::DefenseKind::kFastFlex)
               .Boosters(boosters)
               .EnableInt(false)
               .AttackAt(5 * kSecond)
               .Faults(std::move(plan))
               .Build();
  s.net->RunUntil(20 * kSecond);

  EXPECT_EQ(s.injector->injected(), 3u);
  EXPECT_EQ(s.injector->repaired(), 3u);
  // The mode protocol survived the flapping: defense still fully engaged.
  EXPECT_GT(s.orchestrator->FractionModeActive(dataplane::mode::kLfaReroute), 0.9);
  // Packets were steered around the dead link in the data plane.
  std::uint64_t failovers = 0;
  for (const auto& n : s.net->topology().nodes()) {
    if (n.kind != sim::NodeKind::kSwitch) continue;
    if (auto* f = s.orchestrator->fast_failover(n.id)) failovers += f->failovers();
  }
  EXPECT_GT(failovers, 0u);
}

TEST(FaultyFig3Test, FailoverAndReconvergenceObserved) {
  scenarios::FaultyFig3Options opt;
  opt.duration = 30 * kSecond;
  opt.link_fault_at = 14 * kSecond;
  opt.link_repair_after = 6 * kSecond;
  opt.crash_at = 18 * kSecond;
  opt.reboot_after = 2 * kSecond;
  const auto r = scenarios::RunFaultyFig3(opt);

  // Data-plane failover engaged within the detection window's order of
  // magnitude, not control-plane timescales.
  EXPECT_EQ(r.link_down_at, opt.link_fault_at);
  ASSERT_GT(r.first_failover_at, 0);
  EXPECT_GT(r.failover_latency, 0);
  EXPECT_LT(r.failover_latency, 1 * kSecond);
  EXPECT_GT(r.failovers, 0u);

  // The crashed switch rejoined and re-learned the active modes.
  EXPECT_EQ(r.reboot_at, opt.crash_at + opt.reboot_after);
  ASSERT_GT(r.reconverged_at, r.reboot_at);
  // Reconvergence is a one-hop sync exchange away, not a fresh detection:
  // well under half a second even with probe-loss jitter.
  EXPECT_LT(r.reconverge_latency, 500 * kMillisecond);
  EXPECT_GE(r.resyncs, 1u);
  EXPECT_GE(r.fault_records, 4u);  // link down/up, crash/reboot at minimum

  // The defense held.  A critical link is genuinely gone for 6 s and a
  // middle switch for 2 s, so capacity (not the attack) caps goodput below
  // the fault-free ~0.85 — but well above the undefended collapse.
  EXPECT_GT(r.fig3.mean_during_attack, 0.5);
}

TEST(FaultReplayTest, FaultTelemetryBitIdentical) {
  scenarios::FaultyFig3Options opt;
  opt.duration = 30 * kSecond;
  opt.link_fault_at = 14 * kSecond;
  opt.link_repair_after = 6 * kSecond;
  opt.crash_at = 18 * kSecond;
  opt.reboot_after = 2 * kSecond;

  telemetry::Recorder rec_a;
  opt.recorder = &rec_a;
  const auto a = scenarios::RunFaultyFig3(opt);
  telemetry::Recorder rec_b;
  opt.recorder = &rec_b;
  const auto b = scenarios::RunFaultyFig3(opt);

  // The fault section — and in fact the whole artifact — replays
  // byte-for-byte at the same seed.
  ASSERT_TRUE(rec_a.fault_timeline().HasData());
  EXPECT_EQ(rec_a.fault_timeline().ToJsonSection(),
            rec_b.fault_timeline().ToJsonSection());
  EXPECT_EQ(telemetry::ToJson(rec_a), telemetry::ToJson(rec_b));

  // Derived latencies agree too.
  EXPECT_EQ(a.failover_latency, b.failover_latency);
  EXPECT_EQ(a.reconverge_latency, b.reconverge_latency);
  EXPECT_EQ(a.failovers, b.failovers);
  EXPECT_EQ(a.flood_retries, b.flood_retries);
  EXPECT_EQ(a.fault_records, b.fault_records);
}

}  // namespace
}  // namespace fastflex
