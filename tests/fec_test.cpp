// FEC tests: group XOR parity encode/decode, loss recovery properties.
#include <gtest/gtest.h>

#include "dataplane/fec.h"
#include "util/rng.h"

namespace fastflex::dataplane {
namespace {

std::vector<std::uint64_t> MakeWords(std::size_t n, std::uint64_t seed = 9) {
  Rng rng(seed);
  std::vector<std::uint64_t> words(n);
  for (auto& w : words) w = rng.Next();
  return words;
}

TEST(FecEncodeTest, GroupsAndParities) {
  const std::vector<std::uint64_t> words{1, 2, 3, 4, 5};
  const auto groups = FecEncode(words, 2);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].words.size(), 2u);
  EXPECT_EQ(groups[0].parity, 1ULL ^ 2ULL);
  EXPECT_EQ(groups[1].parity, 3ULL ^ 4ULL);
  EXPECT_EQ(groups[2].words.size(), 1u);  // tail group
  EXPECT_EQ(groups[2].parity, 5ULL);
  EXPECT_EQ(groups[2].words[0].index, 4u);
}

TEST(FecEncodeTest, EmptyAndZeroK) {
  EXPECT_TRUE(FecEncode({}, 4).empty());
  const auto groups = FecEncode({7}, 0);  // k clamps to 1
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].parity, 7u);
}

TEST(FecDecodeTest, LosslessReassembly) {
  const auto words = MakeWords(37);
  FecDecoder dec(words.size(), 8);
  for (const auto& g : FecEncode(words, 8)) {
    for (const auto& w : g.words) dec.AddDataWord(w.index, w.value);
  }
  ASSERT_TRUE(dec.Complete());
  EXPECT_EQ(*dec.Result(), words);
  EXPECT_EQ(dec.recovered(), 0u);
}

TEST(FecDecodeTest, RecoversSingleLossPerGroup) {
  const auto words = MakeWords(32);
  FecDecoder dec(words.size(), 8);
  const auto groups = FecEncode(words, 8);
  for (const auto& g : groups) {
    // Drop the second word of every group.
    for (const auto& w : g.words) {
      if (w.index % 8 != 1) dec.AddDataWord(w.index, w.value);
    }
    dec.AddParity(g.group_id, g.parity);
  }
  ASSERT_TRUE(dec.Complete());
  EXPECT_EQ(*dec.Result(), words);
  EXPECT_EQ(dec.recovered(), 4u);
}

TEST(FecDecodeTest, ParityArrivingFirstStillRecovers) {
  const auto words = MakeWords(8);
  FecDecoder dec(words.size(), 8);
  const auto groups = FecEncode(words, 8);
  dec.AddParity(0, groups[0].parity);
  for (std::size_t i = 1; i < 8; ++i) dec.AddDataWord(static_cast<std::uint32_t>(i), words[i]);
  ASSERT_TRUE(dec.Complete());
  EXPECT_EQ((*dec.Result())[0], words[0]);
  EXPECT_EQ(dec.recovered(), 1u);
}

TEST(FecDecodeTest, TwoLossesInOneGroupAreUnrecoverable) {
  const auto words = MakeWords(8);
  FecDecoder dec(words.size(), 8);
  const auto groups = FecEncode(words, 8);
  for (const auto& w : groups[0].words) {
    if (w.index >= 2) dec.AddDataWord(w.index, w.value);  // drop words 0 and 1
  }
  dec.AddParity(0, groups[0].parity);
  EXPECT_FALSE(dec.Complete());
  EXPECT_EQ(dec.MissingCount(), 2u);
  EXPECT_EQ(dec.Result(), std::nullopt);
}

TEST(FecDecodeTest, DuplicatesAreIdempotent) {
  const auto words = MakeWords(4);
  FecDecoder dec(words.size(), 4);
  for (int round = 0; round < 3; ++round) {
    for (const auto& g : FecEncode(words, 4)) {
      for (const auto& w : g.words) dec.AddDataWord(w.index, w.value);
      dec.AddParity(g.group_id, g.parity);
    }
  }
  ASSERT_TRUE(dec.Complete());
  EXPECT_EQ(*dec.Result(), words);
}

TEST(FecDecodeTest, OutOfRangeInputsIgnored) {
  FecDecoder dec(4, 2);
  dec.AddDataWord(100, 1);  // beyond total
  dec.AddParity(50, 2);     // beyond group count
  EXPECT_EQ(dec.MissingCount(), 4u);
}

/// Property sweep: with random iid loss p and group size k, the transfer
/// completes iff no group lost >= 2 words; verify the decoder agrees with
/// that ground truth on many random trials.
class FecLossTest : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(FecLossTest, DecoderMatchesGroundTruth) {
  const auto [k, loss] = GetParam();
  Rng rng(static_cast<std::uint64_t>(k * 1000 + loss * 100));
  for (int trial = 0; trial < 50; ++trial) {
    const auto words = MakeWords(64, rng.Next());
    FecDecoder dec(words.size(), static_cast<std::size_t>(k));
    const auto groups = FecEncode(words, static_cast<std::size_t>(k));
    bool recoverable = true;
    for (const auto& g : groups) {
      int lost = 0;
      for (const auto& w : g.words) {
        if (rng.Bernoulli(loss)) {
          ++lost;
        } else {
          dec.AddDataWord(w.index, w.value);
        }
      }
      const bool parity_lost = rng.Bernoulli(loss);
      if (!parity_lost) dec.AddParity(g.group_id, g.parity);
      if (lost >= 2 || (lost == 1 && parity_lost)) recoverable = false;
    }
    EXPECT_EQ(dec.Complete(), recoverable);
    if (recoverable) {
      EXPECT_EQ(*dec.Result(), words);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(LossGrid, FecLossTest,
                         ::testing::Combine(::testing::Values(2, 4, 8, 16),
                                            ::testing::Values(0.01, 0.05, 0.15)));

}  // namespace
}  // namespace fastflex::dataplane
