// Federation tests (paper §6): cross-domain alarm import under a
// trust/attack-type policy, with rate limiting against hostile peers.
#include <gtest/gtest.h>

#include "runtime/federation.h"
#include "test_net.h"

namespace fastflex::runtime {
namespace {

using dataplane::attack::kLinkFlooding;
using dataplane::attack::kVolumetricDdos;
using dataplane::mode::kLfaDrop;
using dataplane::mode::kLfaReroute;
using fastflex::testing::MakeLineNet;
using fastflex::testing::TestNet;

/// A 6-switch line: switches 0-2 are domain 1, switches 3-5 are domain 2.
/// A federation gateway sits on switch 3 (domain 2's border), installed
/// BEFORE the mode agent so it adjudicates foreign probes first.
struct TwoDomains {
  TestNet tn;
  std::shared_ptr<FederationGatewayPpm> gateway;

  explicit TwoDomains(FederationPolicy policy) : tn(MakeLineNet(6)) {
    for (std::size_t i = 0; i < 3; ++i) tn.sw(i)->set_region(1);
    for (std::size_t i = 3; i < 6; ++i) tn.sw(i)->set_region(2);
    gateway = std::make_shared<FederationGatewayPpm>(tn.net.get(), tn.sw(3), tn.agent(3),
                                                     std::move(policy));
    // Re-build switch 3's pipeline with the gateway in front.
    auto* pipe = tn.pipe(3);
    pipe->Clear();
    pipe->Install(gateway);
    pipe->Install(tn.agents[3]);
    pipe->Install(tn.collectors[3]);
  }
};

FederationPolicy TrustingPolicy() {
  FederationPolicy policy;
  policy.trusted_regions = {1};
  policy.accepted_attacks = {kLinkFlooding};
  return policy;
}

TEST(FederationTest, TrustedAlarmImportsIntoLocalDomain) {
  TwoDomains d(TrustingPolicy());
  d.tn.agent(0)->RaiseAlarm(kLinkFlooding, kLfaReroute, true);
  d.tn.net->RunUntil(100 * kMillisecond);
  // Domain 1 is in mode, and the gateway re-originated it into domain 2.
  EXPECT_TRUE(d.tn.pipe(1)->ModeActive(kLfaReroute));
  EXPECT_TRUE(d.tn.pipe(4)->ModeActive(kLfaReroute));
  EXPECT_TRUE(d.tn.pipe(5)->ModeActive(kLfaReroute));
  EXPECT_EQ(d.gateway->imported(), 1u);
}

TEST(FederationTest, UntrustedRegionIsRejected) {
  FederationPolicy policy;  // trusts nobody
  policy.accepted_attacks = {kLinkFlooding};
  TwoDomains d(std::move(policy));
  d.tn.agent(0)->RaiseAlarm(kLinkFlooding, kLfaReroute, true);
  d.tn.net->RunUntil(100 * kMillisecond);
  EXPECT_FALSE(d.tn.pipe(4)->ModeActive(kLfaReroute));
  EXPECT_EQ(d.gateway->imported(), 0u);
  EXPECT_GE(d.gateway->rejected_untrusted(), 1u);
}

TEST(FederationTest, AttackTypeFilterApplies) {
  FederationPolicy policy;
  policy.trusted_regions = {1};
  policy.accepted_attacks = {kVolumetricDdos};  // LFA imports not accepted
  TwoDomains d(std::move(policy));
  d.tn.agent(0)->RaiseAlarm(kLinkFlooding, kLfaReroute, true);
  d.tn.net->RunUntil(100 * kMillisecond);
  EXPECT_FALSE(d.tn.pipe(4)->ModeActive(kLfaReroute));
  EXPECT_GE(d.gateway->rejected_attack_type(), 1u);
}

TEST(FederationTest, ModeMaskLimitsPeerInfluence) {
  FederationPolicy policy = TrustingPolicy();
  policy.mode_mask = kLfaReroute;  // peers may not enable dropping here
  TwoDomains d(std::move(policy));
  d.tn.agent(0)->RaiseAlarm(kLinkFlooding, kLfaReroute | kLfaDrop, true);
  d.tn.net->RunUntil(100 * kMillisecond);
  EXPECT_TRUE(d.tn.pipe(4)->ModeActive(kLfaReroute));
  EXPECT_FALSE(d.tn.pipe(4)->ModeActive(kLfaDrop));
  // Domain 1 itself holds both bits.
  EXPECT_TRUE(d.tn.pipe(1)->ModeActive(kLfaDrop));
}

TEST(FederationTest, ImportRateLimitBoundsFlappingPeer) {
  FederationPolicy policy = TrustingPolicy();
  policy.import_holddown = kSecond;
  TwoDomains d(std::move(policy));
  // A hostile peer detector flaps 10 times in 500 ms.
  for (int i = 0; i < 10; ++i) {
    d.tn.net->events().ScheduleAt(i * 50 * kMillisecond, [&d, i] {
      d.tn.agent(0)->RaiseAlarm(kLinkFlooding, kLfaReroute, i % 2 == 0);
    });
  }
  d.tn.net->RunUntil(600 * kMillisecond);
  EXPECT_EQ(d.gateway->imported(), 1u);  // first import only
  EXPECT_GE(d.gateway->rejected_rate(), 1u);
  EXPECT_TRUE(d.tn.pipe(4)->ModeActive(kLfaReroute));
}

TEST(FederationTest, DeactivationImportsUnderSamePolicy) {
  FederationPolicy policy = TrustingPolicy();
  policy.import_holddown = 0;
  TwoDomains d(std::move(policy));
  // Keep the local hold-down short so the clear can take effect.
  d.tn.agent(0)->RaiseAlarm(kLinkFlooding, kLfaReroute, true);
  d.tn.net->RunUntil(600 * kMillisecond);  // past the default hold-down
  d.tn.agent(0)->RaiseAlarm(kLinkFlooding, kLfaReroute, false);
  d.tn.net->RunUntil(1200 * kMillisecond);
  EXPECT_FALSE(d.tn.pipe(1)->ModeActive(kLfaReroute));
  EXPECT_FALSE(d.tn.pipe(4)->ModeActive(kLfaReroute));
  EXPECT_EQ(d.gateway->imported(), 2u);
}

TEST(FederationTest, ForeignProbesDoNotLeakPastGateway) {
  // Even when rejected, foreign probes are consumed at the border: domain
  // 2's interior agents never see region-1 epochs.
  FederationPolicy policy;  // trusts nobody
  TwoDomains d(std::move(policy));
  d.tn.agent(0)->RaiseAlarm(kLinkFlooding, kLfaReroute, true);
  d.tn.net->RunUntil(100 * kMillisecond);
  EXPECT_EQ(d.tn.agent(4)->probes_forwarded(), 0u);
  EXPECT_EQ(d.tn.agent(5)->probes_forwarded(), 0u);
}

TEST(FederationTest, LocalProbesUnaffectedByGateway) {
  TwoDomains d(TrustingPolicy());
  // An alarm raised inside domain 2 propagates normally.
  d.tn.agent(5)->RaiseAlarm(kLinkFlooding, kLfaDrop, true);
  d.tn.net->RunUntil(100 * kMillisecond);
  EXPECT_TRUE(d.tn.pipe(3)->ModeActive(kLfaDrop));
  EXPECT_TRUE(d.tn.pipe(4)->ModeActive(kLfaDrop));
  EXPECT_EQ(d.gateway->imported(), 0u);  // nothing foreign happened
}

}  // namespace
}  // namespace fastflex::runtime
