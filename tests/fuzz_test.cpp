// Fuzz-style robustness tests: a fully deployed defense pipeline is fed
// randomized packets and mode words; invariants must hold for every input.
#include <gtest/gtest.h>

#include "control/orchestrator.h"
#include "scenarios/hotnets.h"
#include "sim/switch_node.h"
#include "util/rng.h"

namespace fastflex {
namespace {

sim::Packet RandomPacket(Rng& rng) {
  sim::Packet pkt;
  // Full PacketKind range, kData through kRst — the handshake kinds the
  // SYN proxy dissects (kSyn/kSynAck/kFin/kRst) included.
  const int kind = static_cast<int>(rng.UniformInt(0, 11));
  pkt.kind = static_cast<sim::PacketKind>(kind);
  pkt.flow = rng.UniformInt(0, 1) ? rng.UniformInt(1, 500) : kInvalidFlow;
  pkt.src = static_cast<Address>(rng.Next());
  pkt.dst = static_cast<Address>(rng.Next());
  pkt.src_port = static_cast<std::uint16_t>(rng.UniformInt(0, 65535));
  pkt.dst_port = static_cast<std::uint16_t>(rng.UniformInt(0, 65535));
  pkt.ttl = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
  pkt.size_bytes = static_cast<std::uint32_t>(rng.UniformInt(40, 9000));
  pkt.seq = rng.Next();
  pkt.ack = rng.Next();
  if (rng.Bernoulli(0.3)) pkt.SetTag(sim::tag::kSuspicion, rng.Next() % 120);
  if (rng.Bernoulli(0.1)) pkt.SetTag(sim::tag::kStateWordIndex, rng.Next() % 4096);
  // Forged proxy-adoption tags: a downstream SynProxyPpm must survive
  // arbitrary (proxied, cookie) claims on any packet kind.
  if (rng.Bernoulli(0.15)) pkt.SetTag(sim::tag::kSynProxied, rng.Next() % 2);
  if (rng.Bernoulli(0.15)) pkt.SetTag(sim::tag::kSynCookie, rng.Next());
  if (pkt.kind == sim::PacketKind::kProbe && rng.Bernoulli(0.8)) {
    auto payload = std::make_shared<sim::ProbePayload>();
    payload->type = static_cast<sim::ProbeType>(rng.UniformInt(0, 3));
    payload->mode_bit = static_cast<std::uint32_t>(rng.Next());
    payload->activate = rng.Bernoulli(0.5);
    payload->epoch = rng.Next() % 1000;
    payload->origin = static_cast<NodeId>(rng.UniformInt(-1, 30));
    payload->hop_budget = static_cast<int>(rng.UniformInt(0, 70));
    payload->region = static_cast<std::uint32_t>(rng.UniformInt(0, 3));
    payload->util_dst = static_cast<NodeId>(rng.UniformInt(-1, 30));
    payload->path_util = rng.NextDouble() * 2.0;
    payload->sync_key = static_cast<std::uint32_t>(rng.UniformInt(0, 10));
    payload->sync_value = rng.NextDouble() * 1e9;
    payload->sync_origin = static_cast<NodeId>(rng.UniformInt(-1, 30));
    pkt.probe = std::move(payload);
  }
  return pkt;
}

TEST(PipelineFuzzTest, RandomPacketsNeverViolateInvariants) {
  scenarios::HotnetsTopology h = scenarios::BuildHotnetsTopology();
  sim::Network net(h.topo, 99);
  net.EnableLinkSampling(10 * kMillisecond);
  auto normal = scenarios::StartNormalTraffic(net, h);
  control::OrchestratorConfig cfg;
  cfg.boosters.push_back("volumetric_ddos");
  cfg.boosters.push_back("global_rate_limit");
  cfg.boosters.push_back("syn_defense");
  cfg.rate_limit_dsts = {net.topology().node(h.victim).address};
  cfg.protected_dsts = {net.topology().node(h.victim).address};
  control::FastFlexOrchestrator orch(&net, cfg);
  orch.Deploy(normal.demands);

  Rng rng(0xf022);
  dataplane::Pipeline* pipe = orch.pipeline(h.m1);
  sim::SwitchNode* sw = net.switch_at(h.m1);
  for (int i = 0; i < 20'000; ++i) {
    if (rng.Bernoulli(0.05)) {
      pipe->set_active_modes(static_cast<std::uint32_t>(rng.Next()));
    }
    sim::Packet pkt = RandomPacket(rng);
    sim::PacketContext ctx{pkt, sw, kInvalidLink, net.Now(), false, false, kInvalidNode, {}};
    pipe->Process(ctx);  // must not crash or corrupt
    // A dropped packet is not also consumed-and-forwarded.
    if (ctx.drop) {
      EXPECT_FALSE(ctx.consume);
    }
    // Any override points at a real node.
    if (ctx.next_hop_override != kInvalidNode) {
      EXPECT_GE(ctx.next_hop_override, 0);
      EXPECT_LT(static_cast<std::size_t>(ctx.next_hop_override), net.topology().NumNodes());
    }
    // Suspicion tags stay in the documented range.
    const auto suspicion = pkt.TagOr(sim::tag::kSuspicion, 0);
    if (!pkt.HasTag(sim::tag::kSuspicion)) {
      EXPECT_EQ(suspicion, 0u);
    }
    // Emissions carry sane sizes.
    for (const auto& e : ctx.emit) {
      EXPECT_GT(e.pkt.size_bytes, 0u);
      EXPECT_LT(e.pkt.size_bytes, 10'000u);
    }
    net.RunUntil(net.Now() + 10 * kMicrosecond);  // let emissions flow
  }
}

TEST(PipelineFuzzTest, RandomTrafficThroughLiveNetworkIsDeterministic) {
  auto run = [] {
    scenarios::HotnetsTopology h = scenarios::BuildHotnetsTopology();
    sim::Network net(h.topo, 5);
    net.EnableLinkSampling(10 * kMillisecond);
    auto normal = scenarios::StartNormalTraffic(net, h);
    control::FastFlexOrchestrator orch(&net, {});
    orch.Deploy(normal.demands,
                [&h](sim::Network& n) { scenarios::SpreadDecoyRoutes(n, h); });
    // A soup of random short flows.
    Rng rng(123);
    std::vector<NodeId> hosts;
    for (const auto& n : net.topology().nodes()) {
      if (n.kind == sim::NodeKind::kHost) hosts.push_back(n.id);
    }
    for (int i = 0; i < 60; ++i) {
      const NodeId a = hosts[static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(hosts.size()) - 1))];
      const NodeId b = hosts[static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(hosts.size()) - 1))];
      if (a == b) continue;
      if (rng.Bernoulli(0.5)) {
        sim::TcpParams p;
        p.total_bytes = static_cast<std::uint64_t>(rng.UniformInt(10'000, 500'000));
        net.StartTcpFlow(a, b, p, rng.UniformInt(0, 5) * kSecond);
      } else {
        sim::UdpParams p;
        p.rate_bps = static_cast<double>(rng.UniformInt(100'000, 3'000'000));
        net.StartUdpFlow(a, b, p, rng.UniformInt(0, 5) * kSecond);
      }
    }
    net.RunUntil(10 * kSecond);
    std::uint64_t fingerprint = 0;
    for (const auto& [flow, stats] : net.all_flow_stats()) {
      fingerprint ^= Mix64(static_cast<std::uint64_t>(flow) * 1000003 +
                           stats.delivered_bytes);
    }
    return fingerprint;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace fastflex
