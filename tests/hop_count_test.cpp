// Hop-count filter (NetHCF-style) tests: TTL learning, spoofed-traffic
// rejection, tolerance, relearning after path changes.
#include <gtest/gtest.h>

#include "boosters/hop_count.h"
#include "test_net.h"

namespace fastflex::boosters {
namespace {

using fastflex::testing::MakeLineNet;
using fastflex::testing::TestNet;

struct HcfHarness {
  TestNet tn = MakeLineNet(2);
  std::shared_ptr<HopCountFilterPpm> hcf;

  explicit HcfHarness(HopCountConfig config = {}) {
    hcf = std::make_shared<HopCountFilterPpm>(tn.net.get(), tn.pipe(0), config);
    tn.pipe(0)->Install(hcf);
  }

  /// Feeds a packet with the given arrival TTL; returns whether it was
  /// dropped.
  bool Feed(Address src, int arrival_ttl) {
    sim::Packet pkt;
    pkt.kind = sim::PacketKind::kUdp;
    pkt.src = src;
    pkt.dst = 42;
    pkt.ttl = static_cast<std::uint8_t>(arrival_ttl);
    pkt.size_bytes = 100;
    sim::PacketContext ctx{pkt, tn.sw(0), kInvalidLink, tn.net->Now(), false, false,
                           kInvalidNode, {}};
    hcf->Process(ctx);
    return ctx.drop;
  }

  void Enforce() { tn.pipe(0)->ActivateMode(dataplane::mode::kHopCountFilter); }
};

TEST(HopCountTest, LearnsDuringPeace) {
  HcfHarness h;
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(h.Feed(100, 60));  // 4 hops away
  EXPECT_EQ(h.hcf->learned_sources(), 1u);
}

TEST(HopCountTest, DropsSpoofedTtlWhenEnforcing) {
  HcfHarness h;
  for (int i = 0; i < 5; ++i) h.Feed(100, 60);
  h.Enforce();
  EXPECT_FALSE(h.Feed(100, 60));  // correct TTL passes
  EXPECT_TRUE(h.Feed(100, 50));   // spoofer guessed a TTL 10 hops off
  EXPECT_EQ(h.hcf->dropped(), 1u);
}

TEST(HopCountTest, ToleranceAllowsSmallDeviation) {
  HopCountConfig config;
  config.tolerance = 1;
  HcfHarness h(config);
  for (int i = 0; i < 5; ++i) h.Feed(100, 60);
  h.Enforce();
  EXPECT_FALSE(h.Feed(100, 59));  // one hop of wobble is fine
  EXPECT_FALSE(h.Feed(100, 61));
  EXPECT_TRUE(h.Feed(100, 57));   // three hops is not
}

TEST(HopCountTest, UnknownSourcesPassUntilLearned) {
  HopCountConfig config;
  config.min_learned = 3;
  HcfHarness h(config);
  h.Enforce();
  // Never-seen source: the filter has no basis to drop.
  EXPECT_FALSE(h.Feed(200, 33));
  EXPECT_EQ(h.hcf->dropped(), 0u);
}

TEST(HopCountTest, InsufficientObservationsNotEnforced) {
  HopCountConfig config;
  config.min_learned = 5;
  HcfHarness h(config);
  h.Feed(100, 60);
  h.Feed(100, 60);  // only 2 observations < 5
  h.Enforce();
  EXPECT_FALSE(h.Feed(100, 40));
}

TEST(HopCountTest, RelearnsAfterLegitimatePathChange) {
  HcfHarness h;
  for (int i = 0; i < 5; ++i) h.Feed(100, 60);
  // The route to src 100 changes (e.g. reroute): new TTL observed while
  // not enforcing resets the learned value.
  for (int i = 0; i < 5; ++i) h.Feed(100, 58);
  h.Enforce();
  EXPECT_FALSE(h.Feed(100, 58));
  EXPECT_TRUE(h.Feed(100, 60));  // the OLD hop count is now anomalous
}

TEST(HopCountTest, StateExportImportRoundTrips) {
  HcfHarness a;
  for (int i = 0; i < 5; ++i) a.Feed(100, 60);
  for (int i = 0; i < 5; ++i) a.Feed(200, 55);
  HcfHarness b;
  b.hcf->ImportState(a.hcf->ExportState());
  EXPECT_EQ(b.hcf->learned_sources(), 2u);
  b.Enforce();
  EXPECT_FALSE(b.Feed(100, 60));
  EXPECT_TRUE(b.Feed(100, 45));
}

TEST(HopCountTest, StrictModeDropsUnknownSources) {
  HopCountConfig config;
  config.strict = true;
  HcfHarness h(config);
  for (int i = 0; i < 5; ++i) h.Feed(100, 60);  // learn one legit source
  h.Enforce();
  EXPECT_FALSE(h.Feed(100, 60));  // known + correct: passes
  EXPECT_TRUE(h.Feed(0xbad00001, 44));  // invented source: dropped
  EXPECT_TRUE(h.Feed(0xbad00002, 60));  // even with a plausible TTL
  EXPECT_EQ(h.hcf->dropped(), 2u);
}

TEST(HopCountTest, SpoofedFloodFilteredEndToEnd) {
  // A UDP flood whose every packet carries a different invented source
  // address transits a strict hop-count filter after a learning phase with
  // legitimate traffic.
  HopCountConfig config;
  config.strict = true;
  TestNet tn = MakeLineNet(2, {}, 1, /*extra_front_hosts=*/1);
  auto hcf = std::make_shared<HopCountFilterPpm>(tn.net.get(), tn.pipe(0), config);
  tn.pipe(0)->Install(hcf);

  // Peacetime: a legitimate flow teaches the filter its source.
  sim::UdpParams legit;
  legit.rate_bps = 2e6;
  const FlowId good = tn.net->StartUdpFlow(tn.hosts[0], tn.hosts[1], legit, 0);
  tn.net->RunUntil(2 * kSecond);
  ASSERT_GE(hcf->learned_sources(), 1u);

  // Attack: spoofed flood + enforcement.
  tn.pipe(0)->ActivateMode(dataplane::mode::kHopCountFilter);
  sim::UdpParams flood;
  flood.rate_bps = 50e6;
  flood.packet_bytes = 1000;
  for (Address fake = 0x0b000001; fake < 0x0b000001 + 64; ++fake) {
    flood.spoof_srcs.push_back(fake);
  }
  const FlowId bad = tn.net->StartUdpFlow(tn.hosts[2], tn.hosts[1], flood, 2 * kSecond);
  tn.net->RunUntil(5 * kSecond);

  // The flood died at the filter; the legitimate flow sailed through.
  const auto& bad_stats = tn.net->flow_stats(bad);
  EXPECT_EQ(bad_stats.delivered_bytes, 0u);
  EXPECT_GT(hcf->dropped(), 1000u);
  const auto& good_stats = tn.net->flow_stats(good);
  EXPECT_GT(good_stats.delivered_bytes, 5 * 2e6 / 8 * 0.9);
}

TEST(HopCountTest, ResetForgetsEverything) {
  HcfHarness h;
  for (int i = 0; i < 5; ++i) h.Feed(100, 60);
  h.hcf->Reset();
  EXPECT_EQ(h.hcf->learned_sources(), 0u);
  h.Enforce();
  EXPECT_FALSE(h.Feed(100, 10));  // unknown again, passes
}

}  // namespace
}  // namespace fastflex::boosters
