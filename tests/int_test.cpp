// In-band telemetry tests: record-stack bounds, the source/transit/sink
// round trip on a line network, resource admission, collector analytics,
// and the INT-vs-traceroute path cross-check.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "control/routes.h"
#include "dataplane/int_ppm.h"
#include "dataplane/pipeline.h"
#include "sim/host.h"
#include "sim/network.h"
#include "sim/switch_node.h"
#include "telemetry/export.h"
#include "telemetry/int_collector.h"
#include "telemetry/telemetry.h"
#include "test_net.h"

namespace fastflex {
namespace {

using dataplane::IntMatchRule;
using dataplane::IntSinkPpm;
using dataplane::IntSourcePpm;
using dataplane::IntTransitPpm;
using telemetry::IntCollector;
using telemetry::IntHopRecord;
using telemetry::IntJourney;
using telemetry::kMaxIntHops;

// ---------------------------------------------------------------------------
// Record stack + lazy box
// ---------------------------------------------------------------------------

IntHopRecord Rec(NodeId sw, SimTime t, std::uint64_t queue = 0,
                 std::uint32_t word = 0, std::uint64_t epoch = 0) {
  IntHopRecord r;
  r.switch_id = sw;
  r.ingress_at = t;
  r.egress_at = t + kMicrosecond;
  r.queue_bytes = queue;
  r.mode_word = word;
  r.mode_epoch = epoch;
  return r;
}

TEST(IntStack, DepthIsClampedAndOverflowCounted) {
  sim::IntStack stack;
  for (std::size_t i = 0; i < kMaxIntHops; ++i) {
    EXPECT_TRUE(stack.Push(Rec(static_cast<NodeId>(i), static_cast<SimTime>(i))));
  }
  EXPECT_EQ(stack.hops.size(), kMaxIntHops);
  EXPECT_EQ(stack.dropped_hops, 0u);

  EXPECT_FALSE(stack.Push(Rec(99, 99)));
  EXPECT_FALSE(stack.Push(Rec(100, 100)));
  EXPECT_EQ(stack.hops.size(), kMaxIntHops);
  EXPECT_EQ(stack.dropped_hops, 2u);
  // The first kMaxIntHops records are the ones kept.
  EXPECT_EQ(stack.hops.front().switch_id, 0);
  EXPECT_EQ(stack.hops.back().switch_id, static_cast<NodeId>(kMaxIntHops - 1));
}

TEST(IntStack, BoxIsLazyAndDeepCopies) {
  sim::Packet plain;
  EXPECT_FALSE(plain.int_stack);
  sim::Packet plain_copy = plain;  // copying an unstamped packet stays cheap
  EXPECT_FALSE(plain_copy.int_stack);

  sim::Packet stamped;
  stamped.int_stack.GetOrCreate().Push(Rec(1, 10));
  sim::Packet copy = stamped;
  ASSERT_TRUE(copy.int_stack);
  copy.int_stack->Push(Rec(2, 20));
  // The copies diverge: each flooded copy accumulates its own hops.
  EXPECT_EQ(stamped.int_stack->hops.size(), 1u);
  EXPECT_EQ(copy.int_stack->hops.size(), 2u);

  copy.int_stack.Reset();
  EXPECT_FALSE(copy.int_stack);
  EXPECT_TRUE(stamped.int_stack);
}

// ---------------------------------------------------------------------------
// PPM round trip on a line network
// ---------------------------------------------------------------------------

struct IntRig {
  std::shared_ptr<const std::unordered_map<Address, NodeId>> host_edge;
  std::vector<std::shared_ptr<IntSourcePpm>> sources;
  std::vector<std::shared_ptr<IntTransitPpm>> transits;
  std::vector<std::shared_ptr<IntSinkPpm>> sinks;
};

IntRig InstallInt(testing::TestNet& tn, IntCollector* collector,
                  IntMatchRule rule = {}, bool activate = true) {
  IntRig rig;
  rig.host_edge = control::BuildHostEdgeMap(*tn.net);
  for (std::size_t i = 0; i < tn.switches.size(); ++i) {
    dataplane::Pipeline* pipe = tn.pipe(i);
    auto src = std::make_shared<IntSourcePpm>(tn.sw(i), rig.host_edge, rule);
    EXPECT_TRUE(pipe->Install(src));
    runtime::ModeProtocolPpm* agent = tn.agent(i);
    auto transit = std::make_shared<IntTransitPpm>(
        tn.net.get(), tn.sw(i), pipe, [agent] { return agent->mode_applications(); });
    EXPECT_TRUE(pipe->Install(transit));
    auto sink = std::make_shared<IntSinkPpm>(tn.sw(i), rig.host_edge, collector);
    EXPECT_TRUE(pipe->Install(sink));
    if (activate) pipe->ActivateMode(dataplane::mode::kIntTelemetry);
    rig.sources.push_back(std::move(src));
    rig.transits.push_back(std::move(transit));
    rig.sinks.push_back(std::move(sink));
  }
  return rig;
}

TEST(IntPpm, SourceTransitSinkRoundTripOnFourHopLine) {
  auto tn = testing::MakeLineNet(4);
  IntCollector col;
  IntRig rig = InstallInt(tn, &col);

  sim::TcpParams params;
  params.total_bytes = 50'000;
  const FlowId flow = tn.net->StartTcpFlow(tn.hosts[0], tn.hosts[1], params, kMillisecond);
  tn.net->RunUntil(5 * kSecond);
  ASSERT_TRUE(tn.net->flow_stats(flow).completed);

  ASSERT_GT(col.journeys(), 0u);
  EXPECT_GT(rig.sources[0]->stamped(), 0u);
  EXPECT_GT(rig.transits[1]->appended(), 0u);
  // Data flows h0 -> h1, so only the far-end sink completes journeys; ACKs
  // are not stamped, so the near-end sink sees nothing.
  EXPECT_EQ(col.journeys(), rig.sinks[3]->journeys_completed());
  EXPECT_EQ(rig.sinks[0]->journeys_completed(), 0u);

  const std::vector<NodeId> want(tn.switches.begin(), tn.switches.end());
  for (const IntJourney& j : col.recent_journeys()) {
    EXPECT_EQ(j.flow, flow);
    EXPECT_EQ(j.PathSwitches(), want);  // every hop, in order
    EXPECT_EQ(j.dropped_hops, 0u);
    EXPECT_GT(j.PathLatency(), 0);
    for (std::size_t h = 0; h < j.hops.size(); ++h) {
      EXPECT_GT(j.hops[h].egress_at, j.hops[h].ingress_at);
      EXPECT_NE(j.hops[h].mode_word & dataplane::mode::kIntTelemetry, 0u);
      if (h > 0) {
        EXPECT_GE(j.hops[h].ingress_at, j.hops[h - 1].ingress_at);
      }
    }
  }

  // One stable path: no churn; one flow summary with a populated latency
  // distribution.
  EXPECT_EQ(col.path_churn_total(), 0u);
  ASSERT_EQ(col.flows().size(), 1u);
  const auto& summary = col.flows().begin()->second;
  EXPECT_EQ(summary.journeys, col.journeys());
  EXPECT_GT(summary.latency_count, 0u);
  EXPECT_GE(summary.latency_max, summary.latency_min);
  EXPECT_EQ(summary.last_path, want);
}

TEST(IntPpm, NoStampingWhileModeIsOff) {
  auto tn = testing::MakeLineNet(4);
  IntCollector col;
  IntRig rig = InstallInt(tn, &col, {}, /*activate=*/false);

  sim::TcpParams params;
  params.total_bytes = 20'000;
  const FlowId flow = tn.net->StartTcpFlow(tn.hosts[0], tn.hosts[1], params, kMillisecond);
  tn.net->RunUntil(5 * kSecond);

  // Traffic flows normally, but the mode gate keeps INT silent.
  EXPECT_TRUE(tn.net->flow_stats(flow).completed);
  EXPECT_EQ(col.journeys(), 0u);
  for (const auto& src : rig.sources) EXPECT_EQ(src->stamped(), 0u);
  for (const auto& t : rig.transits) EXPECT_EQ(t->appended(), 0u);
}

TEST(IntPpm, MidRunActivationStampsOnlyFromThenOn) {
  auto tn = testing::MakeLineNet(4);
  IntCollector col;
  IntRig rig = InstallInt(tn, &col, {}, /*activate=*/false);

  sim::TcpParams params;  // unbounded: runs until the end of the sim
  tn.net->StartTcpFlow(tn.hosts[0], tn.hosts[1], params, kMillisecond);
  tn.net->RunUntil(2 * kSecond);
  EXPECT_EQ(col.journeys(), 0u);

  // Flip the INT mode on everywhere, as a mode-change flood would.
  for (std::size_t i = 0; i < tn.switches.size(); ++i) {
    tn.pipe(i)->ActivateMode(dataplane::mode::kIntTelemetry);
  }
  tn.net->RunUntil(4 * kSecond);
  EXPECT_GT(col.journeys(), 0u);
  for (const IntJourney& j : col.recent_journeys()) {
    EXPECT_GE(j.hops.front().ingress_at, 2 * kSecond);
  }
}

TEST(IntPpm, TransitIsRejectedWhenItDoesNotFit) {
  auto tn = testing::MakeLineNet(2);
  // A starved switch: the transit module (2 stages, 1 MB, 4 ALUs) must be
  // refused by admission control, leaving the pipeline untouched.
  dataplane::Pipeline tiny(dataplane::ResourceVector{1.0, 0.5, 0.0, 2.0});
  auto transit = std::make_shared<IntTransitPpm>(tn.net.get(), tn.sw(0), &tiny);
  EXPECT_FALSE(tiny.Install(transit));
  EXPECT_TRUE(tiny.modules().empty());
  EXPECT_TRUE(tiny.used().IsZero());

  // The same module fits a default-capacity switch.
  dataplane::Pipeline roomy(dataplane::DefaultSwitchCapacity());
  EXPECT_TRUE(roomy.Install(transit));
  EXPECT_FALSE(roomy.used().IsZero());
}

TEST(IntPpm, LongPathsTruncateAtMaxDepth) {
  auto tn = testing::MakeLineNet(static_cast<int>(kMaxIntHops) + 2);
  IntCollector col;
  IntRig rig = InstallInt(tn, &col);

  sim::TcpParams params;
  params.total_bytes = 10'000;
  tn.net->StartTcpFlow(tn.hosts[0], tn.hosts[1], params, kMillisecond);
  tn.net->RunUntil(10 * kSecond);

  ASSERT_GT(col.journeys(), 0u);
  EXPECT_EQ(col.truncated_journeys(), col.journeys());
  EXPECT_GT(col.dropped_hop_records(), 0u);
  for (const IntJourney& j : col.recent_journeys()) {
    EXPECT_EQ(j.hops.size(), kMaxIntHops);  // first 8 hops kept
    EXPECT_EQ(j.dropped_hops, 2u);          // 10-switch line: 2 counted, not stored
    EXPECT_EQ(j.hops.front().switch_id, tn.switches.front());
  }
  // The overflow is charged at the hops past the bound.
  EXPECT_GT(rig.transits[kMaxIntHops]->overflowed(), 0u);
}

TEST(IntPpm, MatchRuleFiltersAndSamples) {
  // A destination filter that matches nothing: no stamping at all.
  {
    auto tn = testing::MakeLineNet(3);
    IntCollector col;
    IntMatchRule rule;
    rule.dsts = {tn.net->topology().node(tn.hosts[0]).address};  // only h0 (a source)
    IntRig rig = InstallInt(tn, &col, rule);
    sim::TcpParams params;
    params.total_bytes = 20'000;
    tn.net->StartTcpFlow(tn.hosts[0], tn.hosts[1], params, kMillisecond);
    tn.net->RunUntil(5 * kSecond);
    EXPECT_EQ(col.journeys(), 0u);
    EXPECT_EQ(rig.sources[0]->stamped(), 0u);
  }
  // 1-in-5 sampling: journeys arrive but far fewer than segments sent.
  {
    auto tn = testing::MakeLineNet(3);
    IntCollector col;
    IntMatchRule rule;
    rule.sample_every = 5;
    InstallInt(tn, &col, rule);
    sim::TcpParams params;
    params.total_bytes = 50'000;  // 50 segments at the default MSS
    tn.net->StartTcpFlow(tn.hosts[0], tn.hosts[1], params, kMillisecond);
    tn.net->RunUntil(5 * kSecond);
    EXPECT_GT(col.journeys(), 0u);
    EXPECT_LT(col.journeys(), 25u);
  }
}

// ---------------------------------------------------------------------------
// Cross-check: the in-band path must agree with traceroute's view
// ---------------------------------------------------------------------------

TEST(IntPpm, IntPathMatchesTraceroutePath) {
  auto tn = testing::MakeLineNet(5);
  IntCollector col;
  InstallInt(tn, &col);

  sim::TcpParams params;
  params.total_bytes = 20'000;
  tn.net->StartTcpFlow(tn.hosts[0], tn.hosts[1], params, kMillisecond);
  tn.net->RunUntil(5 * kSecond);
  ASSERT_GT(col.journeys(), 0u);

  const Address dst_addr = tn.net->topology().node(tn.hosts[1]).address;
  sim::TracerouteResult tr;
  bool done = false;
  tn.net->host_at(tn.hosts[0])->Traceroute(dst_addr, 16, 500 * kMillisecond,
                                           [&](const sim::TracerouteResult& r) {
                                             tr = r;
                                             done = true;
                                           });
  tn.net->RunUntil(15 * kSecond);
  ASSERT_TRUE(done);
  ASSERT_TRUE(tr.reached_destination);
  ASSERT_GT(tr.hops.size(), 1u);

  // Traceroute reports switch router addresses then the destination; the
  // journey reports switch ids.  Map ids to addresses and compare hop by
  // hop — the two observation channels must tell the same story.
  const IntJourney& j = col.recent_journeys().back();
  std::vector<Address> int_path;
  for (NodeId s : j.PathSwitches()) {
    int_path.push_back(tn.net->topology().node(s).address);
  }
  const std::vector<Address> tr_switches(tr.hops.begin(), tr.hops.end() - 1);
  EXPECT_EQ(int_path, tr_switches);
  EXPECT_EQ(tr.hops.back(), dst_addr);
}

// ---------------------------------------------------------------------------
// Collector analytics
// ---------------------------------------------------------------------------

IntJourney MakeJourney(FlowId flow, const std::vector<NodeId>& path, SimTime t0,
                       std::uint64_t queue = 0, std::uint32_t word = 0,
                       std::uint64_t epoch = 0, std::uint64_t seq = 0) {
  IntJourney j;
  j.flow = flow;
  j.seq = seq;
  j.sent_at = t0;
  SimTime t = t0;
  for (NodeId sw : path) {
    j.hops.push_back(Rec(sw, t, queue, word, epoch));
    t += kMillisecond;
  }
  j.completed_at = t;
  return j;
}

TEST(IntCollectorTest, DetectsPathChurn) {
  IntCollector col;
  col.Ingest(MakeJourney(7, {1, 2, 3}, kSecond, 0, 0, 0, 1));
  col.Ingest(MakeJourney(7, {1, 2, 3}, 2 * kSecond, 0, 0, 0, 2));
  EXPECT_EQ(col.path_churn_total(), 0u);

  // The reroute: hop 2 is replaced by hop 4.
  col.Ingest(MakeJourney(7, {1, 4, 3}, 3 * kSecond, 0, 0, 0, 3));
  EXPECT_EQ(col.path_churn_total(), 1u);
  ASSERT_EQ(col.churn_events().size(), 1u);
  EXPECT_EQ(col.churn_events()[0].flow, 7);
  EXPECT_EQ(col.churn_events()[0].prev_path, (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(col.churn_events()[0].path, (std::vector<NodeId>{1, 4, 3}));

  // Staying on the new path is not churn; another flow's path is not churn.
  col.Ingest(MakeJourney(7, {1, 4, 3}, 4 * kSecond, 0, 0, 0, 4));
  col.Ingest(MakeJourney(8, {1, 2, 3}, 4 * kSecond, 0, 0, 0, 1));
  EXPECT_EQ(col.path_churn_total(), 1u);
  EXPECT_EQ(col.flows().at(7).path_changes, 1u);
  EXPECT_EQ(col.flows().at(8).path_changes, 0u);
}

TEST(IntCollectorTest, HottestHopIsPerTimeWindow) {
  IntCollector col(kSecond);
  // Switch 1 is hot in the first second, switch 2 in the second.
  col.Ingest(MakeJourney(1, {1}, 100 * kMillisecond, /*queue=*/100'000));
  col.Ingest(MakeJourney(1, {2}, 200 * kMillisecond, /*queue=*/40'000));
  col.Ingest(MakeJourney(1, {2}, 1300 * kMillisecond, /*queue=*/500'000));

  auto first = col.HottestHop(0, kSecond);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->switch_id, 1);
  EXPECT_EQ(first->max_queue_bytes, 100'000u);

  auto second = col.HottestHop(kSecond, 2 * kSecond);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->switch_id, 2);
  EXPECT_EQ(second->max_queue_bytes, 500'000u);

  auto whole = col.HottestHop(0, 2 * kSecond);
  ASSERT_TRUE(whole.has_value());
  EXPECT_EQ(whole->switch_id, 2);

  EXPECT_FALSE(col.HottestHop(kSecond, kSecond).has_value());
}

TEST(IntCollectorTest, ModeObservationsAreEpochOrdered) {
  IntCollector col;
  // Journeys can complete out of order; the per-switch mode epoch puts the
  // observations back in application order.
  col.Ingest(MakeJourney(1, {5}, 3 * kSecond, 0, /*word=*/0x41, /*epoch=*/2));
  col.Ingest(MakeJourney(2, {5}, 2 * kSecond, 0, /*word=*/0x40, /*epoch=*/1));

  // The stale (epoch 1) record must not register as a flip back to 0x40.
  ASSERT_EQ(col.hops().count(5), 1u);
  EXPECT_EQ(col.hops().at(5).mode_changes, 0u);
  EXPECT_EQ(col.mode_observations().size(), 0u);

  // A genuinely newer word is a flip.
  col.Ingest(MakeJourney(3, {5}, 4 * kSecond, 0, /*word=*/0x43, /*epoch=*/3));
  EXPECT_EQ(col.hops().at(5).mode_changes, 1u);
  ASSERT_EQ(col.mode_observations().size(), 1u);
  EXPECT_EQ(col.mode_observations()[0].switch_id, 5);
  EXPECT_EQ(col.mode_observations()[0].prev_word, 0x41u);
  EXPECT_EQ(col.mode_observations()[0].word, 0x43u);

  // First sighting of each bit is by record ingress time, not arrival order.
  ASSERT_TRUE(col.FirstModeObservation(0x40).has_value());
  EXPECT_EQ(*col.FirstModeObservation(0x40), 2 * kSecond);
  ASSERT_TRUE(col.FirstModeObservation(0x1).has_value());
  EXPECT_EQ(*col.FirstModeObservation(0x1), 3 * kSecond);
  EXPECT_FALSE(col.FirstModeObservation(0x80).has_value());
}

TEST(IntCollectorTest, JsonSectionIsDeterministicAndGatedOnData) {
  telemetry::Recorder empty;
  EXPECT_EQ(telemetry::ToJson(empty).find("\"int\":"), std::string::npos);

  auto feed = [](IntCollector& col) {
    col.Ingest(MakeJourney(7, {1, 2}, kSecond, 1000, 0x40, 1));
    col.Ingest(MakeJourney(7, {1, 3}, 2 * kSecond, 2000, 0x41, 2));
  };
  telemetry::Recorder rec1, rec2;
  feed(rec1.int_collector());
  feed(rec2.int_collector());
  const std::string json1 = telemetry::ToJson(rec1);
  EXPECT_EQ(json1, telemetry::ToJson(rec2));

  EXPECT_NE(json1.find("\"int\":{\"journeys\":2"), std::string::npos);
  EXPECT_NE(json1.find("\"path_churn_total\":1"), std::string::npos);
  EXPECT_NE(json1.find("\"mode_first_seen\":{\"1\":2000000000,\"64\":1000000000}"),
            std::string::npos);
  EXPECT_NE(json1.find("\"churn_events\":[{"), std::string::npos);
}

}  // namespace
}  // namespace fastflex
