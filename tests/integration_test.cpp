// End-to-end integration tests: shortened versions of the paper's
// evaluation, asserting the qualitative claims Figure 3 makes, plus the
// ablations and the mixed-vector (co-existing modes) scenario.
#include <gtest/gtest.h>

#include "attacks/generators.h"
#include "control/orchestrator.h"
#include "scenarios/fig3.h"
#include "scenarios/hotnets.h"

namespace fastflex::scenarios {
namespace {

Fig3Options ShortRun(DefenseKind defense) {
  Fig3Options opt;
  opt.defense = defense;
  opt.duration = 45 * kSecond;
  opt.attack_at = 10 * kSecond;
  return opt;
}

TEST(Fig3IntegrationTest, UndefendedAttackHalvesThroughput) {
  const auto r = RunFig3(ShortRun(DefenseKind::kNone));
  EXPECT_GT(r.stable_goodput_bps, 15e6);  // sanity: the workload is real
  // One critical link flooded: the flows on it starve.
  EXPECT_LT(r.mean_during_attack, 0.65);
  EXPECT_TRUE(r.rolls.empty());  // nothing fights back, nothing to detect
}

TEST(Fig3IntegrationTest, BaselineRecoversOnlyAtEpoch) {
  auto opt = ShortRun(DefenseKind::kBaselineSdn);
  const auto r = RunFig3(opt);
  // Before the first TE epoch (t=30) throughput is depressed.
  const auto attack_s = static_cast<std::size_t>(opt.attack_at / kSecond);
  double before = 0;
  for (std::size_t s = attack_s + 3; s < 30; ++s) before += r.normalized[s];
  before /= static_cast<double>(30 - attack_s - 3);
  EXPECT_LT(before, 0.65);
  // After the epoch it recovers substantially.
  double after = 0;
  for (std::size_t s = 33; s < 40; ++s) after += r.normalized[s];
  after /= 7.0;
  EXPECT_GT(after, before + 0.15);
  EXPECT_GE(r.sdn_reconfigurations, 1);
}

TEST(Fig3IntegrationTest, FastFlexMitigatesWithinSeconds) {
  const auto r = RunFig3(ShortRun(DefenseKind::kFastFlex));
  ASSERT_GT(r.first_alarm, 0);
  // Detection within a few seconds of attack start...
  EXPECT_LT(r.first_alarm, 15 * kSecond);
  // ...and the mode change completes within ~RTTs of the alarm, not the
  // baseline's 20-second wait.
  EXPECT_LT(r.modes_active_at - r.first_alarm, 500 * kMillisecond);
  // Normal flows barely notice the attack.
  EXPECT_GT(r.mean_during_attack, 0.85);
  // Obfuscation + illusion-of-success: the attacker never rolled.
  EXPECT_TRUE(r.rolls.empty());
  // The illusion is made of dropped packets.
  EXPECT_GT(r.policy_drops, 100u);
}

TEST(Fig3IntegrationTest, FastFlexBeatsBaselineBeatsNothing) {
  const auto none = RunFig3(ShortRun(DefenseKind::kNone));
  const auto sdn = RunFig3(ShortRun(DefenseKind::kBaselineSdn));
  const auto ff = RunFig3(ShortRun(DefenseKind::kFastFlex));
  EXPECT_GT(ff.mean_during_attack, sdn.mean_during_attack);
  EXPECT_GE(sdn.mean_during_attack, none.mean_during_attack - 0.02);
}

TEST(Fig3IntegrationTest, DeterministicAcrossRuns) {
  const auto a = RunFig3(ShortRun(DefenseKind::kFastFlex));
  const auto b = RunFig3(ShortRun(DefenseKind::kFastFlex));
  EXPECT_EQ(a.normalized, b.normalized);
  EXPECT_EQ(a.first_alarm, b.first_alarm);
  EXPECT_EQ(a.policy_drops, b.policy_drops);
}

TEST(Fig3IntegrationTest, SeedsChangeDetailsNotConclusions) {
  auto opt = ShortRun(DefenseKind::kFastFlex);
  opt.seed = 7;
  const auto r7 = RunFig3(opt);
  opt.seed = 99;
  const auto r99 = RunFig3(opt);
  EXPECT_GT(r7.mean_during_attack, 0.8);
  EXPECT_GT(r99.mean_during_attack, 0.8);
}

TEST(AblationTest, WithoutBlindingAttackerKeepsRolling) {
  // A2: disable obfuscation and dropping — FastFlex still reroutes, so
  // throughput stays decent, but the attacker sees the response and rolls.
  auto opt = ShortRun(DefenseKind::kFastFlex);
  opt.duration = 60 * kSecond;
  opt.enable_obfuscation = false;
  opt.enable_dropping = false;
  const auto r = RunFig3(opt);
  EXPECT_FALSE(r.rolls.empty());
  // Each roll forces a fresh detection cycle, so the time-average sits well
  // below the full defense; rerouting alone still roughly matches the
  // baseline without waiting for 30 s epochs.
  EXPECT_GT(r.mean_during_attack, 0.5);
}

TEST(AblationTest, FullDefenseQuellsRollingVsNoBlinding) {
  auto full = ShortRun(DefenseKind::kFastFlex);
  full.duration = 60 * kSecond;
  const auto r_full = RunFig3(full);

  auto blind = full;
  blind.enable_obfuscation = false;
  blind.enable_dropping = false;
  const auto r_blind = RunFig3(blind);

  EXPECT_LT(r_full.rolls.size(), r_blind.rolls.size() + 1);
  // Blinding (obfuscation + illusion-of-success) is worth a large chunk of
  // throughput: without it the attacker's rolling keeps re-disturbing the
  // network.
  EXPECT_GT(r_full.mean_during_attack, r_blind.mean_during_attack + 0.15);
}

TEST(AblationTest, RerouteAllDisturbsNormalFlowsMore) {
  // A1: rerouting everything (not just suspects) abandons TE pinning; the
  // suspicious-only policy should never be materially worse.
  auto pinned = ShortRun(DefenseKind::kFastFlex);
  const auto r_pinned = RunFig3(pinned);
  auto all = pinned;
  all.reroute_all = true;
  const auto r_all = RunFig3(all);
  EXPECT_GE(r_pinned.mean_during_attack, r_all.mean_during_attack - 0.03);
}

TEST(RepurposeUnderAttackTest, DefenseContinuesThroughReconfiguration) {
  // Section 3.4: "when we repurpose a switch at runtime, we need to ensure
  // that its functions are correctly and efficiently handled elsewhere."
  // Repurpose middle switch M3 (the detour) in the middle of a mitigated
  // LFA: the defense must keep the normal flows whole throughout.
  HotnetsTopology h = BuildHotnetsTopology();
  sim::Network net(h.topo, 1);
  net.EnableLinkSampling(10 * kMillisecond);
  auto normal = StartNormalTraffic(net, h);
  control::OrchestratorConfig cfg;
  cfg.te = scheduler::TeOptions{.k_paths = 2};
  control::FastFlexOrchestrator orch(&net, cfg);
  orch.Deploy(normal.demands, [&h](sim::Network& n) { SpreadDecoyRoutes(n, h); });

  attacks::CrossfireConfig atk;
  atk.bots = h.bots;
  atk.decoys = h.decoys;
  atk.attack_at = 5 * kSecond;
  atk.flows_per_target = 200;
  attacks::CrossfireAttacker attacker(&net, atk);
  attacker.Start();

  // At t=15 s (defense long since engaged), repurpose M3 for 2 s, moving
  // its detector state to M2.
  bool repurposed = false;
  net.events().ScheduleAt(15 * kSecond, [&] {
    runtime::ScalingManager::Plan plan;
    plan.victim = h.m3;
    plan.target = h.m2;
    plan.moves = {{orch.lfa_detector(h.m3), orch.lfa_detector(h.m2)}};
    plan.downtime = 2 * kSecond;
    plan.done = [&](const runtime::RepurposeReport&) { repurposed = true; };
    orch.scaling().Repurpose(std::move(plan));
  });

  net.RunUntil(30 * kSecond);
  ASSERT_TRUE(repurposed);
  // Normal goodput through the blackout window (15-18 s) held up.
  double bps_sum = 0;
  for (int s = 15; s < 18; ++s) {
    bps_sum += net.AggregateGoodputBps(normal.flows, s * kSecond);
  }
  EXPECT_GT(bps_sum / 3.0, 0.7 * 23e6);
  // And at the end the defense is still standing (attack ongoing).
  EXPECT_GT(orch.FractionModeActive(dataplane::mode::kLfaReroute), 0.9);
  EXPECT_TRUE(attacker.rolls().empty());
}

TEST(MixedVectorTest, CoexistingModesInDifferentRegions) {
  // LFA in the left region (1) and a volumetric flood against the victim
  // handled in the right region (2): both defenses engage, each scoped to
  // its region — the multimode abstraction of Figure 2's caption.
  HotnetsTopology h = BuildHotnetsTopology();
  sim::Network net(h.topo, 1);
  net.EnableLinkSampling(10 * kMillisecond);
  auto normal = StartNormalTraffic(net, h);

  control::OrchestratorConfig cfg;
  cfg.te = scheduler::TeOptions{.k_paths = 2};
  cfg.boosters.push_back("volumetric_ddos");
  cfg.protected_dsts = {net.topology().node(h.victim).address};
  cfg.volumetric.dst_rate_alarm_bps = 40e6;
  for (NodeId sw : {h.a, h.b, h.e, h.m1, h.m2, h.m3}) cfg.regions[sw] = 1;
  for (NodeId sw : {h.r, h.rv, h.rd}) cfg.regions[sw] = 2;
  control::FastFlexOrchestrator orch(&net, cfg);
  orch.Deploy(normal.demands, [&h](sim::Network& n) { SpreadDecoyRoutes(n, h); });

  attacks::CrossfireConfig lfa;
  lfa.bots = {h.bots[0], h.bots[1], h.bots[2], h.bots[3]};
  lfa.decoys = h.decoys;
  lfa.attack_at = 5 * kSecond;
  lfa.flows_per_target = 200;
  attacks::CrossfireAttacker attacker(&net, lfa);
  attacker.Start();

  // The volumetric flood originates inside region 2: compromised "public
  // servers" (decoys) near the victim turn their 100 Mbps uplinks on it —
  // the paper's compromised-endpoint threat model.
  attacks::VolumetricConfig vol;
  vol.bots = {h.decoys[1], h.decoys[2]};
  vol.victim = h.victim;
  vol.rate_per_bot_bps = 60e6;
  vol.start = 5 * kSecond;
  attacks::LaunchVolumetric(net, vol);

  net.RunUntil(25 * kSecond);

  // LFA modes engaged in region 1 only.
  EXPECT_GT(orch.FractionModeActive(dataplane::mode::kLfaReroute, 1), 0.9);
  EXPECT_DOUBLE_EQ(orch.FractionModeActive(dataplane::mode::kLfaReroute, 2), 0.0);
  // Volumetric filtering engaged in region 2 only.
  EXPECT_GT(orch.FractionModeActive(dataplane::mode::kVolumetricFilter, 2), 0.9);
  EXPECT_DOUBLE_EQ(orch.FractionModeActive(dataplane::mode::kVolumetricFilter, 1), 0.0);
  // Both mitigations actually fired.
  std::uint64_t hh_drops = 0;
  for (NodeId sw : {h.r, h.rv, h.rd}) {
    if (auto* f = orch.hh_filter(sw)) hh_drops += f->dropped();
  }
  EXPECT_GT(hh_drops, 100u);
  std::uint64_t lfa_drops = 0;
  for (NodeId sw : {h.a, h.b, h.m1, h.m2, h.m3, h.e}) {
    if (auto* d = orch.dropper(sw)) lfa_drops += d->dropped();
  }
  EXPECT_GT(lfa_drops, 100u);
}

}  // namespace
}  // namespace fastflex::scenarios
