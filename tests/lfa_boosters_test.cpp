// LFA booster unit tests: detector classification (the Crossfire
// signature), suspicion tag adoption, alarm raise/clear hysteresis, the
// probabilistic dropper, utilization-probe rerouting, and the obfuscator's
// canonical-path reporting.
#include <gtest/gtest.h>

#include "boosters/dropper.h"
#include "boosters/lfa_detector.h"
#include "boosters/obfuscator.h"
#include "boosters/reroute.h"
#include "test_net.h"

namespace fastflex::boosters {
namespace {

using fastflex::testing::MakeLineNet;
using fastflex::testing::TestNet;

struct DetectorHarness {
  TestNet tn = MakeLineNet(2);
  std::shared_ptr<SuspiciousSrcBloomPpm> bloom;
  std::shared_ptr<DstFlowCountSketchPpm> sketch;
  std::shared_ptr<LfaDetectorPpm> detector;
  std::vector<std::tuple<std::uint32_t, std::uint32_t, bool>> alarms;

  explicit DetectorHarness(LfaConfig config = {}) {
    bloom = std::make_shared<SuspiciousSrcBloomPpm>();
    sketch = std::make_shared<DstFlowCountSketchPpm>();
    detector = std::make_shared<LfaDetectorPpm>(
        tn.net.get(), tn.sw(0), bloom, sketch, config,
        [this](std::uint32_t a, std::uint32_t m, bool on) { alarms.emplace_back(a, m, on); });
    tn.pipe(0)->Install(bloom);
    tn.pipe(0)->Install(sketch);
    tn.pipe(0)->Install(detector);
  }

  /// Feeds one packet through the detector; returns its suspicion tag.
  int Feed(Address src, Address dst, std::uint32_t size, std::uint64_t seq = 0,
           std::uint16_t sport = 1000) {
    sim::Packet pkt;
    pkt.kind = sim::PacketKind::kData;
    pkt.flow = static_cast<FlowId>((static_cast<std::uint64_t>(src) << 16) | sport);
    pkt.src = src;
    pkt.dst = dst;
    pkt.src_port = sport;
    pkt.dst_port = 80;
    pkt.size_bytes = size;
    pkt.seq = seq;
    sim::PacketContext ctx{pkt, tn.sw(0), kInvalidLink, tn.net->Now(), false, false,
                           kInvalidNode, {}};
    detector->Process(ctx);
    return static_cast<int>(pkt.TagOr(sim::tag::kSuspicion, 0));
  }
};

TEST(LfaDetectorTest, YoungFlowsAreNotSuspicious) {
  DetectorHarness h;
  // 100 distinct flows to one dst, but all brand new.
  for (int f = 0; f < 100; ++f) {
    EXPECT_EQ(h.Feed(static_cast<Address>(100 + f), 999, 500, 1,
                     static_cast<std::uint16_t>(f)),
              0);
  }
}

TEST(LfaDetectorTest, PersistentLowRateConvergingFlowsScoreHigh) {
  LfaConfig config;
  config.dst_flow_alarm = 20;
  DetectorHarness h(config);
  // 50 flows converge on dst 999; feed a first packet each, advance time
  // past the persistence threshold, feed again at a low byte rate.
  for (int f = 0; f < 50; ++f) {
    h.Feed(static_cast<Address>(100 + f), 999, 200, 1, static_cast<std::uint16_t>(f));
  }
  h.tn.net->RunUntil(3 * kSecond);
  for (int f = 0; f < 50; ++f) {
    const int score = h.Feed(static_cast<Address>(100 + f), 999, 200, 2,
                             static_cast<std::uint16_t>(f));
    EXPECT_GE(score, config.suspicion_base) << "flow " << f;
  }
  // Their sources are now in the shared bloom filter.
  EXPECT_TRUE(h.bloom->bloom().MayContain(100));
  EXPECT_TRUE(h.bloom->bloom().MayContain(149));
}

TEST(LfaDetectorTest, ExtremeConvergenceEarnsTopScore) {
  LfaConfig config;
  config.dst_flow_alarm = 10;
  DetectorHarness h(config);
  for (int f = 0; f < 40; ++f) {  // 40 >= 2 * 10 + headroom
    h.Feed(static_cast<Address>(100 + f), 999, 200, 1, static_cast<std::uint16_t>(f));
  }
  h.tn.net->RunUntil(3 * kSecond);
  const int score = h.Feed(100, 999, 200, 2, 0);
  EXPECT_EQ(score, config.suspicion_high);
}

TEST(LfaDetectorTest, HighRateFlowsStayClean) {
  LfaConfig config;
  config.dst_flow_alarm = 5;
  DetectorHarness h(config);
  // Plenty of convergence, but this flow moves real bytes.
  for (int f = 0; f < 20; ++f) {
    h.Feed(static_cast<Address>(100 + f), 999, 200, 1, static_cast<std::uint16_t>(f));
  }
  h.tn.net->RunUntil(2 * kSecond);
  // 2 MB over 2 s = 8 Mbps >> low_rate threshold.
  for (int i = 0; i < 20; ++i) h.Feed(100, 999, 100'000, static_cast<std::uint64_t>(i + 2), 0);
  EXPECT_EQ(h.Feed(100, 999, 100'000, 50, 0), 0);
}

TEST(LfaDetectorTest, IsolatedLowRateFlowIsNotSuspicious) {
  DetectorHarness h;
  h.Feed(100, 999, 200, 1);
  h.tn.net->RunUntil(3 * kSecond);
  // Low rate and persistent, but nothing converges on dst 999.
  EXPECT_EQ(h.Feed(100, 999, 200, 2), 0);
}

TEST(LfaDetectorTest, AdoptsUpstreamSuspicionTag) {
  DetectorHarness h;
  sim::Packet pkt;
  pkt.kind = sim::PacketKind::kData;
  pkt.flow = 1;
  pkt.src = 555;
  pkt.dst = 999;
  pkt.size_bytes = 200;
  pkt.SetTag(sim::tag::kSuspicion, 95);  // upstream detector's verdict
  sim::PacketContext ctx{pkt, h.tn.sw(0), kInvalidLink, 0, false, false, kInvalidNode, {}};
  h.detector->Process(ctx);
  EXPECT_TRUE(h.bloom->bloom().MayContain(555));
  EXPECT_EQ(pkt.TagOr(sim::tag::kSuspicion, 0), 95u);  // tag preserved
}

TEST(LfaDetectorTest, RetransmitSignalsTracked) {
  DetectorHarness h;
  h.Feed(100, 999, 200, 5);
  h.Feed(100, 999, 200, 6);
  h.Feed(100, 999, 200, 5);  // repeated seq = retransmission signal
  const auto* fs = h.detector->flows().Peek(sim::FlowKey([&] {
    sim::Packet p;
    p.kind = sim::PacketKind::kData;
    p.src = 100;
    p.dst = 999;
    p.src_port = 1000;
    p.dst_port = 80;
    return p;
  }()));
  ASSERT_NE(fs, nullptr);
  EXPECT_EQ(fs->retransmit_signals, 1u);
  EXPECT_EQ(fs->packets, 3u);
}

TEST(PacketDropperTest, DropsOnlyAboveThresholdProbabilistically) {
  TestNet tn = MakeLineNet(2);
  PacketDropperPpm dropper(tn.net.get(), 90, 0.8);
  int dropped_high = 0;
  for (int i = 0; i < 1000; ++i) {
    sim::Packet pkt;
    pkt.kind = sim::PacketKind::kData;
    pkt.SetTag(sim::tag::kSuspicion, 95);
    sim::PacketContext ctx{pkt, tn.sw(0), kInvalidLink, 0, false, false, kInvalidNode, {}};
    dropper.Process(ctx);
    dropped_high += ctx.drop;
  }
  EXPECT_NEAR(dropped_high, 800, 60);

  for (int i = 0; i < 100; ++i) {
    sim::Packet pkt;
    pkt.kind = sim::PacketKind::kData;
    pkt.SetTag(sim::tag::kSuspicion, 80);  // below the drop threshold
    sim::PacketContext ctx{pkt, tn.sw(0), kInvalidLink, 0, false, false, kInvalidNode, {}};
    dropper.Process(ctx);
    EXPECT_FALSE(ctx.drop);
  }
}

TEST(PacketDropperTest, EvaluatesEachPacketOnce) {
  TestNet tn = MakeLineNet(2);
  PacketDropperPpm first(tn.net.get(), 90, 1.0);
  PacketDropperPpm second(tn.net.get(), 90, 1.0);
  int dropped_by_second = 0;
  for (int i = 0; i < 100; ++i) {
    sim::Packet pkt;
    pkt.kind = sim::PacketKind::kData;
    pkt.SetTag(sim::tag::kSuspicion, 95);
    // Survived an upstream dropper (simulate by marking evaluated).
    pkt.SetTag(sim::tag::kDropEvaluated, 1);
    sim::PacketContext ctx{pkt, tn.sw(0), kInvalidLink, 0, false, false, kInvalidNode, {}};
    second.Process(ctx);
    dropped_by_second += ctx.drop;
  }
  EXPECT_EQ(dropped_by_second, 0);
  (void)first;
}

struct RerouteHarness {
  TestNet tn;
  std::shared_ptr<const std::unordered_map<Address, NodeId>> host_edge;
  std::vector<std::shared_ptr<CongestionReroutePpm>> ppms;

  explicit RerouteHarness(RerouteConfig config = {}) : tn(MakeLineNet(4)) {
    host_edge = control::BuildHostEdgeMap(*tn.net);
    for (std::size_t i = 0; i < 4; ++i) {
      auto ppm = std::make_shared<CongestionReroutePpm>(tn.net.get(), tn.sw(i), tn.pipe(i),
                                                        host_edge, config);
      tn.pipe(i)->Install(ppm);
      ppm->StartTimers();
      ppms.push_back(ppm);
    }
  }
};

TEST(RerouteTest, NoProbesWhileModeInactive) {
  RerouteHarness h;
  h.tn.net->RunUntil(kSecond);
  for (const auto& ppm : h.ppms) {
    EXPECT_EQ(ppm->probes_originated(), 0u);
    EXPECT_EQ(ppm->probes_seen(), 0u);
  }
}

TEST(RerouteTest, ProbesBuildBestPathTablesWhenActive) {
  RerouteHarness h;
  for (std::size_t i = 0; i < 4; ++i) h.tn.pipe(i)->ActivateMode(dataplane::mode::kLfaReroute);
  h.tn.net->RunUntil(kSecond);
  // Edge switches (0 and 3 have hosts) advertise; switch 1 learns the way
  // to edge switch 3 is via switch 2.
  EXPECT_GT(h.ppms[0]->probes_originated(), 0u);
  EXPECT_EQ(h.ppms[1]->BestNextHop(h.tn.switches[3]), h.tn.switches[2]);
  EXPECT_EQ(h.ppms[2]->BestNextHop(h.tn.switches[0]), h.tn.switches[1]);
}

TEST(RerouteTest, EntriesExpireWithoutRefresh) {
  RerouteConfig config;
  config.entry_ttl = 100 * kMillisecond;
  RerouteHarness h(config);
  for (std::size_t i = 0; i < 4; ++i) h.tn.pipe(i)->ActivateMode(dataplane::mode::kLfaReroute);
  h.tn.net->RunUntil(500 * kMillisecond);
  ASSERT_NE(h.ppms[1]->BestNextHop(h.tn.switches[3]), kInvalidNode);
  // Deactivate: probes stop; entries age out.
  for (std::size_t i = 0; i < 4; ++i) h.tn.pipe(i)->DeactivateMode(dataplane::mode::kLfaReroute);
  h.tn.net->RunUntil(kSecond);
  EXPECT_EQ(h.ppms[1]->BestNextHop(h.tn.switches[3]), kInvalidNode);
}

TEST(RerouteTest, SuspiciousPacketsGetOverrideCleanOnesDoNot) {
  RerouteHarness h;
  for (std::size_t i = 0; i < 4; ++i) h.tn.pipe(i)->ActivateMode(dataplane::mode::kLfaReroute);
  h.tn.net->RunUntil(kSecond);

  const Address dst_addr = h.tn.net->topology().node(h.tn.hosts[1]).address;
  sim::Packet suspicious;
  suspicious.kind = sim::PacketKind::kData;
  suspicious.dst = dst_addr;
  suspicious.SetTag(sim::tag::kSuspicion, 80);
  sim::PacketContext ctx{suspicious, h.tn.sw(1), kInvalidLink, h.tn.net->Now(),
                         false,      false,      kInvalidNode, {}};
  h.ppms[1]->Process(ctx);
  EXPECT_EQ(ctx.next_hop_override, h.tn.switches[2]);
  EXPECT_TRUE(suspicious.HasTag(sim::tag::kRerouted));

  sim::Packet clean;
  clean.kind = sim::PacketKind::kData;
  clean.dst = dst_addr;
  sim::PacketContext ctx2{clean, h.tn.sw(1), kInvalidLink, h.tn.net->Now(),
                          false, false,      kInvalidNode, {}};
  h.ppms[1]->Process(ctx2);
  EXPECT_EQ(ctx2.next_hop_override, kInvalidNode);
}

TEST(RerouteTest, RerouteAllModeSteersEverything) {
  RerouteConfig config;
  config.reroute_all = true;
  RerouteHarness h(config);
  for (std::size_t i = 0; i < 4; ++i) h.tn.pipe(i)->ActivateMode(dataplane::mode::kLfaReroute);
  h.tn.net->RunUntil(kSecond);
  sim::Packet clean;
  clean.kind = sim::PacketKind::kData;
  clean.dst = h.tn.net->topology().node(h.tn.hosts[1]).address;
  sim::PacketContext ctx{clean, h.tn.sw(1), kInvalidLink, h.tn.net->Now(),
                         false, false,      kInvalidNode, {}};
  h.ppms[1]->Process(ctx);
  EXPECT_NE(ctx.next_hop_override, kInvalidNode);
}

TEST(ObfuscatorTest, ReportsCanonicalHopForSuspiciousProbe) {
  TestNet tn = MakeLineNet(4);
  auto host_edge = control::BuildHostEdgeMap(*tn.net);
  auto canonical = control::ComputeCanonicalPaths(*tn.net);
  auto bloom = std::make_shared<SuspiciousSrcBloomPpm>();
  TopologyObfuscatorPpm obf(tn.net.get(), tn.sw(2), bloom, canonical, host_edge,
                            /*obfuscate_all=*/false);

  const Address attacker = tn.net->topology().node(tn.hosts[0]).address;
  const Address dst = tn.net->topology().node(tn.hosts[1]).address;
  bloom->bloom().Insert(attacker);

  sim::Packet probe;
  probe.kind = sim::PacketKind::kTraceroute;
  probe.src = attacker;
  probe.dst = dst;
  probe.seq = (1ULL << 8) | 2;  // ttl = 2: canonical hop 2 is switch 1
  const Address own = tn.net->topology().node(tn.switches[2]).address;
  const Address reported = obf.TracerouteReportAddress(probe, own);
  EXPECT_EQ(reported, tn.net->topology().node(tn.switches[1]).address);
  EXPECT_NE(reported, own);
}

TEST(ObfuscatorTest, CleanSourcesSeeTruthUnlessObfuscateAll) {
  TestNet tn = MakeLineNet(3);
  auto host_edge = control::BuildHostEdgeMap(*tn.net);
  auto canonical = control::ComputeCanonicalPaths(*tn.net);
  auto bloom = std::make_shared<SuspiciousSrcBloomPpm>();
  const Address src = tn.net->topology().node(tn.hosts[0]).address;
  const Address dst = tn.net->topology().node(tn.hosts[1]).address;
  const Address own = tn.net->topology().node(tn.switches[1]).address;

  sim::Packet probe;
  probe.kind = sim::PacketKind::kTraceroute;
  probe.src = src;
  probe.dst = dst;
  probe.seq = (1ULL << 8) | 2;

  TopologyObfuscatorPpm selective(tn.net.get(), tn.sw(1), bloom, canonical, host_edge,
                                  /*obfuscate_all=*/false);
  EXPECT_EQ(selective.TracerouteReportAddress(probe, own), own);
  EXPECT_EQ(selective.obfuscated_replies(), 0u);

  TopologyObfuscatorPpm blanket(tn.net.get(), tn.sw(1), bloom, canonical, host_edge,
                                /*obfuscate_all=*/true);
  // obfuscate_all reports the canonical hop — which on the default path is
  // the true hop, so diagnostics are unharmed.
  EXPECT_EQ(blanket.TracerouteReportAddress(probe, own), own);
  EXPECT_EQ(blanket.obfuscated_replies(), 1u);
}

TEST(ObfuscatorTest, TtlBeyondCanonicalLengthReportsDestination) {
  TestNet tn = MakeLineNet(3);
  auto host_edge = control::BuildHostEdgeMap(*tn.net);
  auto canonical = control::ComputeCanonicalPaths(*tn.net);
  auto bloom = std::make_shared<SuspiciousSrcBloomPpm>();
  const Address src = tn.net->topology().node(tn.hosts[0]).address;
  const Address dst = tn.net->topology().node(tn.hosts[1]).address;
  bloom->bloom().Insert(src);
  TopologyObfuscatorPpm obf(tn.net.get(), tn.sw(1), bloom, canonical, host_edge, false);

  sim::Packet probe;
  probe.kind = sim::PacketKind::kTraceroute;
  probe.src = src;
  probe.dst = dst;
  probe.seq = (1ULL << 8) | 60;  // far beyond the 4-hop canonical path
  EXPECT_EQ(obf.TracerouteReportAddress(probe, 0x1234), dst);
}

}  // namespace
}  // namespace fastflex::boosters
