// Link model tests: serialization delay, propagation, drop-tail queueing,
// utilization sampling, and switch routing/fast-reroute behavior.
#include <gtest/gtest.h>

#include "control/routes.h"
#include "sim/host.h"
#include "sim/network.h"
#include "sim/switch_node.h"

namespace fastflex::sim {
namespace {

/// h1 - s1 - s2 - h2 line with a slow middle link.
struct Line {
  Topology t;
  NodeId s1, s2, h1, h2;
  LinkId mid;
  Line(double mid_rate = 8e6, std::uint32_t mid_queue = 10'000) {
    s1 = t.AddNode(NodeKind::kSwitch, "s1");
    s2 = t.AddNode(NodeKind::kSwitch, "s2");
    h1 = t.AddNode(NodeKind::kHost, "h1");
    h2 = t.AddNode(NodeKind::kHost, "h2");
    mid = t.AddDuplexLink(s1, s2, mid_rate, 10 * kMillisecond, mid_queue);
    t.AddDuplexLink(s1, h1, 1e9, kMillisecond, 1'000'000);
    t.AddDuplexLink(s2, h2, 1e9, kMillisecond, 1'000'000);
  }
};

Packet MakeUdp(Network& net, NodeId from, NodeId to, std::uint32_t size) {
  Packet p;
  p.kind = PacketKind::kUdp;
  p.src = net.topology().node(from).address;
  p.dst = net.topology().node(to).address;
  p.size_bytes = size;
  return p;
}

TEST(LinkTest, SerializationPlusPropagationDelay) {
  Line line;
  Network net(line.t, 1);
  control::InstallDstRoutes(net);

  // 8e6 bps link, 1000-byte packet -> 1 ms serialization + 10 ms prop.
  net.SendOnLink(line.mid, MakeUdp(net, line.s1, line.h2, 1000));
  net.RunUntil(10 * kMillisecond + 999 * kMicrosecond);
  EXPECT_EQ(net.link_runtime(line.mid).tx_packets, 1u);
  // The packet is delivered to s2 at exactly 11 ms.
  SwitchNode* s2 = net.switch_at(line.s2);
  EXPECT_EQ(s2->rx_packets(), 0u);
  net.RunUntil(11 * kMillisecond);
  EXPECT_EQ(s2->rx_packets(), 1u);
}

TEST(LinkTest, BackToBackPacketsQueueBehindEachOther) {
  Line line;
  Network net(line.t, 1);
  control::InstallDstRoutes(net);
  // Two packets sent at t=0: second arrives one serialization time later.
  net.SendOnLink(line.mid, MakeUdp(net, line.s1, line.h2, 1000));
  net.SendOnLink(line.mid, MakeUdp(net, line.s1, line.h2, 1000));
  SwitchNode* s2 = net.switch_at(line.s2);
  net.RunUntil(11 * kMillisecond);
  EXPECT_EQ(s2->rx_packets(), 1u);
  net.RunUntil(12 * kMillisecond);
  EXPECT_EQ(s2->rx_packets(), 2u);
}

TEST(LinkTest, DropTailWhenQueueFull) {
  Line line(8e6, /*mid_queue=*/2500);  // fits 2 x 1000B packets + slack
  Network net(line.t, 1);
  control::InstallDstRoutes(net);
  for (int i = 0; i < 5; ++i) {
    net.SendOnLink(line.mid, MakeUdp(net, line.s1, line.h2, 1000));
  }
  const auto& rt = net.link_runtime(line.mid);
  EXPECT_EQ(rt.tx_packets, 2u);
  EXPECT_EQ(rt.dropped_packets, 3u);
  net.RunUntil(kSecond);
  EXPECT_EQ(net.switch_at(line.s2)->rx_packets(), 2u);
}

TEST(LinkTest, QueueDrainsAllowingLaterTraffic) {
  Line line(8e6, 2500);
  Network net(line.t, 1);
  control::InstallDstRoutes(net);
  for (int i = 0; i < 5; ++i) net.SendOnLink(line.mid, MakeUdp(net, line.s1, line.h2, 1000));
  net.RunUntil(kSecond);  // queue fully drained
  net.SendOnLink(line.mid, MakeUdp(net, line.s1, line.h2, 1000));
  net.RunUntil(2 * kSecond);
  EXPECT_EQ(net.link_runtime(line.mid).dropped_packets, 3u);
  EXPECT_EQ(net.link_runtime(line.mid).tx_packets, 3u);
}

TEST(LinkTest, UtilizationSamplingTracksLoad) {
  Line line(8e6, 1'000'000);
  Network net(line.t, 1);
  control::InstallDstRoutes(net);
  net.EnableLinkSampling(10 * kMillisecond);
  // Saturate: send 100 x 1000B = 100 ms worth of transmission over 100 ms.
  for (int i = 0; i < 100; ++i) net.SendOnLink(line.mid, MakeUdp(net, line.s1, line.h2, 1000));
  net.RunUntil(100 * kMillisecond);
  EXPECT_GT(net.LinkUtilization(line.mid), 0.8);
  // After the burst drains, utilization decays.
  net.RunUntil(500 * kMillisecond);
  EXPECT_LT(net.LinkUtilization(line.mid), 0.1);
}

TEST(SwitchTest, RoutesByDestinationAddress) {
  Line line;
  Network net(line.t, 1);
  control::InstallDstRoutes(net);
  Host* h1 = net.host_at(line.h1);
  h1->SendPacket(MakeUdp(net, line.h1, line.h2, 500));
  net.RunUntil(kSecond);
  // Delivered end to end: both switches forwarded it.
  EXPECT_EQ(net.switch_at(line.s1)->forwarded_packets(), 1u);
  EXPECT_EQ(net.switch_at(line.s2)->forwarded_packets(), 1u);
}

TEST(SwitchTest, NoRouteDropsAreCounted) {
  Line line;
  Network net(line.t, 1);  // no routes installed
  Host* h1 = net.host_at(line.h1);
  h1->SendPacket(MakeUdp(net, line.h1, line.h2, 500));
  net.RunUntil(kSecond);
  EXPECT_EQ(net.switch_at(line.s1)->no_route_drops(), 1u);
}

TEST(SwitchTest, OfflineSwitchDropsEverything) {
  Line line;
  Network net(line.t, 1);
  control::InstallDstRoutes(net);
  net.switch_at(line.s2)->SetOffline(true);
  net.host_at(line.h1)->SendPacket(MakeUdp(net, line.h1, line.h2, 500));
  net.RunUntil(kSecond);
  EXPECT_EQ(net.switch_at(line.s2)->offline_drops(), 1u);
  EXPECT_EQ(net.switch_at(line.s2)->forwarded_packets(), 0u);
}

TEST(SwitchTest, FlowRouteOverridesDstRouteForForwardPacketsOnly) {
  // Triangle: s1 connects to s2 directly and via s3.
  Topology t;
  const NodeId s1 = t.AddNode(NodeKind::kSwitch, "s1");
  const NodeId s2 = t.AddNode(NodeKind::kSwitch, "s2");
  const NodeId s3 = t.AddNode(NodeKind::kSwitch, "s3");
  const NodeId h1 = t.AddNode(NodeKind::kHost, "h1");
  const NodeId h2 = t.AddNode(NodeKind::kHost, "h2");
  t.AddDuplexLink(s1, s2, 1e9, kMillisecond, 100000);
  t.AddDuplexLink(s1, s3, 1e9, kMillisecond, 100000);
  t.AddDuplexLink(s3, s2, 1e9, kMillisecond, 100000);
  t.AddDuplexLink(s1, h1, 1e9, kMillisecond, 100000);
  t.AddDuplexLink(s2, h2, 1e9, kMillisecond, 100000);
  Network net(t, 1);
  control::InstallDstRoutes(net);

  // Pin flow 42's forward direction through s3.
  net.switch_at(s1)->SetFlowRoute(42, s3);
  Packet data = MakeUdp(net, h1, h2, 500);
  data.flow = 42;
  net.host_at(h1)->SendPacket(std::move(data));
  net.RunUntil(kSecond);
  EXPECT_EQ(net.switch_at(s3)->forwarded_packets(), 1u);

  // An ACK of flow 42 toward h1 ignores the flow route (it would point the
  // wrong way) and uses destination routing.
  Packet ack;
  ack.kind = PacketKind::kAck;
  ack.flow = 42;
  ack.src = t.node(h2).address;
  ack.dst = t.node(h1).address;
  ack.size_bytes = 40;
  net.host_at(h2)->SendPacket(std::move(ack));
  net.RunUntil(2 * kSecond);
  EXPECT_EQ(net.switch_at(s3)->forwarded_packets(), 1u);  // unchanged
}

TEST(SwitchTest, FastRerouteUsesBackupWhenNeighborAvoided) {
  Topology t;
  const NodeId s1 = t.AddNode(NodeKind::kSwitch, "s1");
  const NodeId s2 = t.AddNode(NodeKind::kSwitch, "s2");
  const NodeId s3 = t.AddNode(NodeKind::kSwitch, "s3");
  const NodeId h2 = t.AddNode(NodeKind::kHost, "h2");
  t.AddDuplexLink(s1, s2, 1e9, kMillisecond, 100000);
  t.AddDuplexLink(s1, s3, 1e9, kMillisecond, 100000);
  t.AddDuplexLink(s3, s2, 1e9, kMillisecond, 100000);
  t.AddDuplexLink(s2, h2, 1e9, kMillisecond, 100000);
  Network net(t, 1);
  control::InstallDstRoutes(net);

  // Primary next hop from s1 to h2 is s2; avoid it -> backup via s3.
  net.switch_at(s1)->SetAvoidNeighbor(s2, true);
  Packet p = MakeUdp(net, s1, h2, 500);
  net.switch_at(s1)->SendRouted(std::move(p));
  net.RunUntil(kSecond);
  EXPECT_EQ(net.switch_at(s3)->forwarded_packets(), 1u);

  // Clearing the avoid restores the primary.
  net.switch_at(s1)->SetAvoidNeighbor(s2, false);
  Packet q = MakeUdp(net, s1, h2, 500);
  net.switch_at(s1)->SendRouted(std::move(q));
  net.RunUntil(2 * kSecond);
  EXPECT_EQ(net.switch_at(s3)->forwarded_packets(), 1u);  // unchanged
}

TEST(SwitchTest, TtlExpiryGeneratesIcmpReply) {
  Line line;
  Network net(line.t, 1);
  control::InstallDstRoutes(net);
  Packet probe;
  probe.kind = PacketKind::kTraceroute;
  probe.src = net.topology().node(line.h1).address;
  probe.dst = net.topology().node(line.h2).address;
  probe.ttl = 1;
  probe.seq = (1ULL << 8) | 1;
  bool got_reply = false;
  // Watch for the ICMP reply at h1 by running a traceroute-free check: the
  // reply is addressed to h1, so h1's switch s1 forwards twice (probe out,
  // reply back).
  net.host_at(line.h1)->SendPacket(std::move(probe));
  net.RunUntil(kSecond);
  // The probe expired at s1, which answered with a reply delivered to h1.
  EXPECT_EQ(net.switch_at(line.s1)->forwarded_packets(), 1u);  // the reply
  (void)got_reply;
}

}  // namespace
}  // namespace fastflex::sim
