// Distributed mode-change protocol tests (Section 3.3): RTT-scale
// propagation, epoch deduplication, hop-budget scoping, region-scoped
// co-existing modes, hold-down stability against flapping.
#include <gtest/gtest.h>

#include "test_net.h"

namespace fastflex::runtime {
namespace {

using dataplane::attack::kLinkFlooding;
using dataplane::mode::kLfaDrop;
using dataplane::mode::kLfaReroute;
using fastflex::testing::MakeLineNet;
using fastflex::testing::TestNet;

TEST(ModeProtocolTest, AlarmActivatesLocallyImmediately) {
  TestNet tn = MakeLineNet(3);
  tn.agent(1)->RaiseAlarm(kLinkFlooding, kLfaReroute, true);
  EXPECT_TRUE(tn.pipe(1)->ModeActive(kLfaReroute));
  // Neighbors have not heard yet (no events processed).
  EXPECT_FALSE(tn.pipe(0)->ModeActive(kLfaReroute));
}

TEST(ModeProtocolTest, FloodReachesAllSwitchesAtRttScale) {
  TestNet tn = MakeLineNet(5);
  tn.agent(0)->RaiseAlarm(kLinkFlooding, kLfaReroute, true);
  // 4 hops x ~1 ms: everything is in mode within ~10 ms.
  tn.net->RunUntil(10 * kMillisecond);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(tn.pipe(i)->ModeActive(kLfaReroute)) << "switch " << i;
  }
}

TEST(ModeProtocolTest, DuplicateProbesDoNotReapply) {
  TestNet tn = MakeLineNet(4);
  tn.agent(0)->RaiseAlarm(kLinkFlooding, kLfaReroute, true);
  tn.net->RunUntil(50 * kMillisecond);
  // In a line, each switch hears the probe from both directions eventually
  // but applies it once.
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(tn.agent(i)->mode_applications(), 1u) << "switch " << i;
  }
}

TEST(ModeProtocolTest, HopBudgetLimitsFloodRadius) {
  ModeProtocolConfig cfg;
  cfg.hop_budget = 2;  // origin + one further hop
  TestNet tn = MakeLineNet(5, cfg);
  tn.agent(0)->RaiseAlarm(kLinkFlooding, kLfaReroute, true);
  tn.net->RunUntil(50 * kMillisecond);
  EXPECT_TRUE(tn.pipe(0)->ModeActive(kLfaReroute));
  EXPECT_TRUE(tn.pipe(1)->ModeActive(kLfaReroute));
  EXPECT_TRUE(tn.pipe(2)->ModeActive(kLfaReroute));
  EXPECT_FALSE(tn.pipe(3)->ModeActive(kLfaReroute));
  EXPECT_FALSE(tn.pipe(4)->ModeActive(kLfaReroute));
}

TEST(ModeProtocolTest, RegionScopingConfinesModes) {
  TestNet tn = MakeLineNet(4);
  tn.sw(0)->set_region(1);
  tn.sw(1)->set_region(1);
  tn.sw(2)->set_region(2);
  tn.sw(3)->set_region(2);
  tn.agent(0)->RaiseAlarm(kLinkFlooding, kLfaReroute, true);
  tn.net->RunUntil(50 * kMillisecond);
  EXPECT_TRUE(tn.pipe(0)->ModeActive(kLfaReroute));
  EXPECT_TRUE(tn.pipe(1)->ModeActive(kLfaReroute));
  // Region-2 switches forward the probe but do not apply it.
  EXPECT_FALSE(tn.pipe(2)->ModeActive(kLfaReroute));
  EXPECT_FALSE(tn.pipe(3)->ModeActive(kLfaReroute));
}

TEST(ModeProtocolTest, CoexistingModesInDifferentRegions) {
  TestNet tn = MakeLineNet(4);
  tn.sw(0)->set_region(1);
  tn.sw(1)->set_region(1);
  tn.sw(2)->set_region(2);
  tn.sw(3)->set_region(2);
  tn.agent(0)->RaiseAlarm(kLinkFlooding, kLfaReroute, true);
  tn.agent(3)->RaiseAlarm(dataplane::attack::kVolumetricDdos,
                          dataplane::mode::kVolumetricFilter, true);
  tn.net->RunUntil(50 * kMillisecond);
  // Mixed-vector defense: each region holds its own mode, neither leaks.
  EXPECT_TRUE(tn.pipe(1)->ModeActive(kLfaReroute));
  EXPECT_FALSE(tn.pipe(1)->ModeActive(dataplane::mode::kVolumetricFilter));
  EXPECT_TRUE(tn.pipe(2)->ModeActive(dataplane::mode::kVolumetricFilter));
  EXPECT_FALSE(tn.pipe(2)->ModeActive(kLfaReroute));
}

TEST(ModeProtocolTest, DeactivationAfterHoldDown) {
  ModeProtocolConfig cfg;
  cfg.holddown = 100 * kMillisecond;
  TestNet tn = MakeLineNet(3, cfg);
  tn.agent(0)->RaiseAlarm(kLinkFlooding, kLfaReroute, true);
  tn.net->RunUntil(200 * kMillisecond);  // past the hold-down
  tn.agent(0)->RaiseAlarm(kLinkFlooding, kLfaReroute, false);
  tn.net->RunUntil(300 * kMillisecond);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_FALSE(tn.pipe(i)->ModeActive(kLfaReroute)) << "switch " << i;
  }
}

TEST(ModeProtocolTest, HoldDownSuppressesImmediateDeactivation) {
  ModeProtocolConfig cfg;
  cfg.holddown = 500 * kMillisecond;
  TestNet tn = MakeLineNet(3, cfg);
  tn.agent(0)->RaiseAlarm(kLinkFlooding, kLfaReroute, true);
  tn.net->RunUntil(10 * kMillisecond);
  // An attacker-induced flap: deactivate right after activation.
  tn.agent(0)->RaiseAlarm(kLinkFlooding, kLfaReroute, false);
  tn.net->RunUntil(100 * kMillisecond);
  // Hold-down keeps every switch in the defense mode.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(tn.pipe(i)->ModeActive(kLfaReroute)) << "switch " << i;
  }
}

TEST(ModeProtocolTest, FlappingAttackerCannotOscillateModes) {
  ModeProtocolConfig cfg;
  cfg.holddown = 400 * kMillisecond;
  TestNet tn = MakeLineNet(3, cfg);
  // Rapid on/off/on/off from a detector that an adversary is gaming.
  for (int i = 0; i < 10; ++i) {
    tn.net->events().ScheduleAt(i * 50 * kMillisecond, [&tn, i] {
      tn.agent(0)->RaiseAlarm(kLinkFlooding, kLfaReroute, i % 2 == 0);
    });
  }
  tn.net->RunUntil(600 * kMillisecond);
  // The mode stayed on throughout the burst; count of applications at the
  // remote switch is bounded by activations, not by flaps.
  EXPECT_TRUE(tn.pipe(2)->ModeActive(kLfaReroute));
  EXPECT_LE(tn.agent(2)->mode_applications(), 5u);
}

TEST(ModeProtocolTest, SeparateModeBitsAreIndependent) {
  TestNet tn = MakeLineNet(2, ModeProtocolConfig{.holddown = 0});
  tn.agent(0)->RaiseAlarm(kLinkFlooding, kLfaReroute | kLfaDrop, true);
  tn.net->RunUntil(20 * kMillisecond);
  tn.agent(0)->RaiseAlarm(kLinkFlooding, kLfaDrop, false);
  tn.net->RunUntil(40 * kMillisecond);
  EXPECT_TRUE(tn.pipe(1)->ModeActive(kLfaReroute));
  EXPECT_FALSE(tn.pipe(1)->ModeActive(kLfaDrop));
}

TEST(ModeProtocolTest, ReconfigNoticeSetsAndClearsAvoid) {
  TestNet tn = MakeLineNet(3);
  tn.agent(1)->AnnounceReconfig(true);
  tn.net->RunUntil(10 * kMillisecond);
  // Neighbors 0 and 2 now avoid switch 1: switch 0's route to h1 (via 1)
  // has no backup in a line, so the packet is dropped rather than looped.
  sim::Packet pkt;
  pkt.kind = sim::PacketKind::kUdp;
  pkt.dst = tn.net->topology().node(tn.hosts[1]).address;
  pkt.size_bytes = 100;
  const auto drops_before = tn.sw(0)->no_route_drops();
  tn.sw(0)->SendRouted(std::move(pkt));
  EXPECT_EQ(tn.sw(0)->no_route_drops(), drops_before + 1);

  tn.agent(1)->AnnounceReconfig(false);
  tn.net->RunUntil(20 * kMillisecond);
  sim::Packet pkt2;
  pkt2.kind = sim::PacketKind::kUdp;
  pkt2.dst = tn.net->topology().node(tn.hosts[1]).address;
  pkt2.size_bytes = 100;
  tn.sw(0)->SendRouted(std::move(pkt2));
  EXPECT_EQ(tn.sw(0)->no_route_drops(), drops_before + 1);  // flows again
}

TEST(ModeProtocolTest, ProbesCountAsForwarded) {
  TestNet tn = MakeLineNet(4);
  tn.agent(0)->RaiseAlarm(kLinkFlooding, kLfaReroute, true);
  tn.net->RunUntil(50 * kMillisecond);
  std::uint64_t forwarded = 0;
  for (std::size_t i = 0; i < 4; ++i) forwarded += tn.agent(i)->probes_forwarded();
  EXPECT_GE(forwarded, 2u);  // middle switches re-flooded
}

}  // namespace
}  // namespace fastflex::runtime
