// FastFlex orchestrator tests: the full deploy pipeline — analysis,
// placement, shared installs, module wiring, mode introspection.
#include <gtest/gtest.h>

#include "control/orchestrator.h"
#include "scenarios/hotnets.h"

namespace fastflex::control {
namespace {

using scenarios::BuildHotnetsTopology;
using scenarios::HotnetsTopology;
using scenarios::SpreadDecoyRoutes;
using scenarios::StartNormalTraffic;

struct Deployed {
  HotnetsTopology h = BuildHotnetsTopology();
  std::unique_ptr<sim::Network> net;
  std::unique_ptr<FastFlexOrchestrator> orch;

  explicit Deployed(OrchestratorConfig config = {}) {
    net = std::make_unique<sim::Network>(h.topo, 1);
    net->EnableLinkSampling(10 * kMillisecond);
    auto normal = StartNormalTraffic(*net, h);
    orch = std::make_unique<FastFlexOrchestrator>(net.get(), config);
    orch->Deploy(normal.demands, [this](sim::Network& n) { SpreadDecoyRoutes(n, h); });
  }
};

TEST(OrchestratorTest, DeploysPipelinesOnEverySwitch) {
  Deployed d;
  for (const auto& n : d.net->topology().nodes()) {
    if (n.kind != sim::NodeKind::kSwitch) continue;
    dataplane::Pipeline* pipe = d.orch->pipeline(n.id);
    ASSERT_NE(pipe, nullptr) << n.name;
    EXPECT_NE(d.orch->agent(n.id), nullptr);
    EXPECT_NE(d.orch->collector(n.id), nullptr);
    EXPECT_NE(d.orch->lfa_detector(n.id), nullptr);
    EXPECT_NE(d.orch->reroute(n.id), nullptr);
    EXPECT_NE(d.orch->obfuscator(n.id), nullptr);
    EXPECT_NE(d.orch->dropper(n.id), nullptr);
    EXPECT_TRUE(pipe->used().FitsIn(pipe->capacity()));
  }
}

TEST(OrchestratorTest, SharedModulesInstalledOnce) {
  Deployed d;
  dataplane::Pipeline* pipe = d.orch->pipeline(d.h.a);
  int blooms = 0, parsers = 0;
  for (const auto& m : pipe->modules()) {
    blooms += (m->signature().kind == dataplane::PpmKind::kBloomFilter);
    parsers += (m->signature().kind == dataplane::PpmKind::kParser);
  }
  // The bloom serves the detector, obfuscator, and dropper; the parser
  // serves every booster — each installed exactly once.
  EXPECT_EQ(blooms, 1);
  EXPECT_EQ(parsers, 1);
}

TEST(OrchestratorTest, AnalysisResultsExposed) {
  Deployed d;
  EXPECT_GT(d.orch->merged_graph().ppms.size(), 0u);
  EXPECT_GT(d.orch->savings().shared_modules, 0u);
  EXPECT_LT(d.orch->savings().modules_after, d.orch->savings().modules_before);
  EXPECT_TRUE(d.orch->placement().feasible);
  EXPECT_DOUBLE_EQ(d.orch->placement().detector_path_coverage, 1.0);
  // Stable TE routed every demand.
  for (const auto& p : d.orch->te_solution().paths) EXPECT_FALSE(p.empty());
}

TEST(OrchestratorTest, BoosterListOmitsModules) {
  OrchestratorConfig config;
  config.boosters = {"lfa_detection", "congestion_reroute"};
  Deployed d(config);
  EXPECT_EQ(d.orch->obfuscator(d.h.a), nullptr);
  EXPECT_EQ(d.orch->dropper(d.h.a), nullptr);
  EXPECT_NE(d.orch->lfa_detector(d.h.a), nullptr);
}

TEST(OrchestratorTest, OptionalBoostersDeployOnDemand) {
  OrchestratorConfig config;
  config.boosters.insert(config.boosters.end(),
                         {"volumetric_ddos", "global_rate_limit", "hop_count_filter"});
  config.protected_dsts = {1234};
  config.rate_limit_dsts = {1234};
  Deployed d(config);
  EXPECT_NE(d.orch->hh_filter(d.h.a), nullptr);
  EXPECT_NE(d.orch->rate_limiter(d.h.a), nullptr);
  EXPECT_NE(d.orch->pipeline(d.h.a)->Find("hop_count_filter"), nullptr);
  // Registry install order is reported back, phases ascending.
  EXPECT_EQ(d.orch->deployed_boosters(),
            (std::vector<std::string>{"lfa_detection", "congestion_reroute",
                                      "topology_obfuscation", "packet_dropping",
                                      "volumetric_ddos", "global_rate_limit",
                                      "hop_count_filter"}));
}

TEST(OrchestratorTest, BoosterListPrunesAndExtendsTheDefaultSet) {
  // The ablation path through the registry API: remove names from the
  // default set, append optional boosters — what the deprecated bool flags
  // used to fold into the list.
  OrchestratorConfig config;
  std::erase(config.boosters, std::string("topology_obfuscation"));
  std::erase(config.boosters, std::string("packet_dropping"));
  config.boosters.emplace_back("volumetric_ddos");
  config.protected_dsts = {1234};
  Deployed d(config);
  EXPECT_EQ(d.orch->obfuscator(d.h.a), nullptr);
  EXPECT_EQ(d.orch->dropper(d.h.a), nullptr);
  EXPECT_NE(d.orch->lfa_detector(d.h.a), nullptr);
  EXPECT_NE(d.orch->hh_filter(d.h.a), nullptr);
}

TEST(OrchestratorTest, SynDefenseBoosterDeploysItsTrio) {
  OrchestratorConfig config;
  config.boosters.emplace_back("syn_defense");
  config.protected_dsts = {1234};
  Deployed d(config);
  EXPECT_NE(d.orch->syn_rate_detector(d.h.a), nullptr);
  EXPECT_NE(d.orch->syn_proxy(d.h.a), nullptr);
  EXPECT_NE(d.orch->seq_translate(d.h.a), nullptr);
  // The proxy is mode-gated: installed everywhere, idle until kSynDefense.
  EXPECT_EQ(d.orch->syn_proxy(d.h.a)->required_mode(), dataplane::mode::kSynDefense);
  EXPECT_FALSE(d.orch->pipeline(d.h.a)->ModeActive(dataplane::mode::kSynDefense));
}

TEST(OrchestratorTest, UnknownBoosterNamesAreSkipped) {
  OrchestratorConfig config;
  config.boosters = {"lfa_detection", "congestion_reroute", "no_such_booster"};
  Deployed d(config);
  EXPECT_EQ(d.orch->deployed_boosters(),
            (std::vector<std::string>{"lfa_detection", "congestion_reroute"}));
  EXPECT_NE(d.orch->lfa_detector(d.h.a), nullptr);
}

TEST(OrchestratorTest, RegionsAssignedToSwitches) {
  OrchestratorConfig config;
  HotnetsTopology topo_probe = BuildHotnetsTopology();
  config.regions[topo_probe.a] = 1;
  config.regions[topo_probe.r] = 2;
  Deployed d(config);
  EXPECT_EQ(d.net->switch_at(d.h.a)->region(), 1u);
  EXPECT_EQ(d.net->switch_at(d.h.r)->region(), 2u);
  EXPECT_EQ(d.net->switch_at(d.h.b)->region(), 0u);  // default
}

TEST(OrchestratorTest, FractionModeActiveTracksAlarms) {
  Deployed d;
  EXPECT_DOUBLE_EQ(d.orch->FractionModeActive(dataplane::mode::kLfaReroute), 0.0);
  d.orch->agent(d.h.a)->RaiseAlarm(dataplane::attack::kLinkFlooding,
                                   dataplane::mode::kLfaReroute, true);
  d.net->RunUntil(50 * kMillisecond);
  EXPECT_DOUBLE_EQ(d.orch->FractionModeActive(dataplane::mode::kLfaReroute), 1.0);
}

TEST(OrchestratorTest, NormalTrafficFlowsUnderDeployment) {
  Deployed d;
  d.net->RunUntil(8 * kSecond);
  // All six client flows make progress through the defense pipelines.
  double total = 0;
  for (const auto& [flow, stats] : d.net->all_flow_stats()) {
    total += static_cast<double>(stats.delivered_bytes);
  }
  EXPECT_GT(total * 8 / 8.0, 15e6);  // aggregate well above 15 Mbps
  // And no defense mode activated spuriously.
  EXPECT_DOUBLE_EQ(d.orch->FractionModeActive(dataplane::mode::kLfaReroute), 0.0);
  EXPECT_EQ(d.net->total_policy_drops(), 0u);
}

}  // namespace
}  // namespace fastflex::control
