// Placement tests (Figure 1c): detection on all paths, mitigation near
// detectors, vector bin packing under tight capacities.
#include <gtest/gtest.h>

#include "analyzer/analyzer.h"
#include "boosters/registry.h"
#include "scenarios/fattree.h"
#include "scenarios/hotnets.h"
#include "scheduler/placement.h"
#include "scheduler/te.h"

namespace fastflex::scheduler {
namespace {

using analyzer::Cluster;
using analyzer::PpmRole;
using dataplane::ResourceVector;
using sim::NodeKind;

Cluster MakeCluster(PpmRole role, ResourceVector demand) {
  Cluster c;
  c.members = {0};
  c.demand = demand;
  c.role = role;
  return c;
}

TEST(PlacementTest, DetectionCoversAllTrafficPaths) {
  const auto h = scenarios::BuildHotnetsTopology();
  const auto paths = std::vector<sim::Path>{
      h.topo.ShortestPath(h.clients[0], h.victim),
      h.topo.ShortestPath(h.clients[3], h.victim),
  };
  const auto clusters =
      std::vector<Cluster>{MakeCluster(PpmRole::kDetection, ResourceVector{2, 1, 0, 4})};
  const auto placement = PlaceClusters(h.topo, clusters, paths);
  EXPECT_TRUE(placement.feasible);
  EXPECT_DOUBLE_EQ(placement.detector_path_coverage, 1.0);
  // Every switch on the paths hosts the detector.
  EXPECT_GE(placement.instances[0].size(), 3u);
}

TEST(PlacementTest, MitigationCoLocatesWithDetectors) {
  const auto h = scenarios::BuildHotnetsTopology();
  const auto paths =
      std::vector<sim::Path>{h.topo.ShortestPath(h.clients[0], h.victim)};
  const auto clusters = std::vector<Cluster>{
      MakeCluster(PpmRole::kDetection, ResourceVector{2, 1, 0, 4}),
      MakeCluster(PpmRole::kMitigation, ResourceVector{2, 1, 0, 4}),
  };
  const auto placement = PlaceClusters(h.topo, clusters, paths);
  EXPECT_TRUE(placement.feasible);
  EXPECT_DOUBLE_EQ(placement.mean_mitigation_distance, 0.0);
  // Same switch set for both.
  EXPECT_EQ(placement.instances[0].size(), placement.instances[1].size());
}

TEST(PlacementTest, MitigationSpillsDownstreamWhenDetectorSwitchFull) {
  const auto h = scenarios::BuildHotnetsTopology();
  const auto paths =
      std::vector<sim::Path>{h.topo.ShortestPath(h.clients[0], h.victim)};
  PlacementOptions options;
  options.switch_capacity = ResourceVector{6, 10, 1000, 20};
  options.routing_reserve = ResourceVector{1, 1, 100, 2};
  // Detection eats almost the whole budget; mitigation must go a hop away.
  const auto clusters = std::vector<Cluster>{
      MakeCluster(PpmRole::kDetection, ResourceVector{4, 4, 0, 10}),
      MakeCluster(PpmRole::kMitigation, ResourceVector{3, 3, 0, 8}),
  };
  const auto placement = PlaceClusters(h.topo, clusters, paths, options);
  EXPECT_GT(placement.mean_mitigation_distance, 0.0);
  EXPECT_LE(placement.mean_mitigation_distance, 1.0);
}

TEST(PlacementTest, InfeasibleWhenNothingFits) {
  const auto h = scenarios::BuildHotnetsTopology();
  const auto paths =
      std::vector<sim::Path>{h.topo.ShortestPath(h.clients[0], h.victim)};
  const auto clusters = std::vector<Cluster>{
      MakeCluster(PpmRole::kDetection, ResourceVector{100, 100, 100000, 1000})};
  const auto placement = PlaceClusters(h.topo, clusters, paths);
  EXPECT_FALSE(placement.feasible);
  EXPECT_EQ(placement.total_instances, 0u);
}

TEST(PlacementTest, ResourceAccountingNeverExceedsBudget) {
  const auto specs = boosters::SpecsFor(boosters::FullBoosterSuite());
  const auto merged = analyzer::Merge(specs);
  PlacementOptions options;  // defaults
  const auto clusters = analyzer::ClusterGraph(
      merged, options.switch_capacity - options.routing_reserve);
  const auto ft = scenarios::BuildFatTree(4);
  std::vector<sim::Path> paths;
  for (std::size_t i = 1; i < ft.hosts.size(); ++i) {
    paths.push_back(ft.topo.ShortestPath(ft.hosts[i], ft.hosts[0]));
  }
  const auto placement = PlaceClusters(ft.topo, clusters, paths, options);
  const auto budget = options.switch_capacity - options.routing_reserve;
  for (const auto& [sw, used] : placement.used) {
    EXPECT_TRUE(used.FitsIn(budget)) << "switch " << sw << " over budget: "
                                     << used.ToString();
  }
}

TEST(PlacementTest, FullBoosterSuiteNeedsDualPipeSwitches) {
  const auto specs = boosters::SpecsFor(boosters::FullBoosterSuite());
  const auto merged = analyzer::Merge(specs);
  const auto h = scenarios::BuildHotnetsTopology();
  std::vector<sim::Path> paths;
  for (NodeId c : h.clients) paths.push_back(h.topo.ShortestPath(c, h.victim));

  // On a single-pipe 12-stage switch the full seven-booster suite does NOT
  // fit alongside routing — resource multiplexing is a real constraint
  // (Challenge 1) and the solver must report that honestly.
  PlacementOptions single;
  single.switch_capacity = ResourceVector{12, 60, 3072, 32};
  const auto clusters_single = analyzer::ClusterGraph(
      merged, single.switch_capacity - single.routing_reserve);
  EXPECT_FALSE(PlaceClusters(h.topo, clusters_single, paths, single).feasible);

  // The default (multi-pipe) profile holds everything, with detection on
  // every path.
  PlacementOptions dual;
  const auto clusters_dual =
      analyzer::ClusterGraph(merged, dual.switch_capacity - dual.routing_reserve);
  const auto placement = PlaceClusters(h.topo, clusters_dual, paths, dual);
  EXPECT_TRUE(placement.feasible);
  EXPECT_DOUBLE_EQ(placement.detector_path_coverage, 1.0);
}

TEST(PlacementTest, TightCapacityReducesCoverageGracefully) {
  const auto h = scenarios::BuildHotnetsTopology();
  std::vector<sim::Path> paths;
  for (NodeId c : h.clients) paths.push_back(h.topo.ShortestPath(c, h.victim));
  PlacementOptions options;
  options.switch_capacity = ResourceVector{3, 2, 256, 6};
  options.routing_reserve = ResourceVector{1, 1, 128, 2};
  const auto clusters = std::vector<Cluster>{
      MakeCluster(PpmRole::kDetection, ResourceVector{2, 1, 0, 4}),
      MakeCluster(PpmRole::kDetection, ResourceVector{2, 1, 0, 4}),
  };
  const auto placement = PlaceClusters(h.topo, clusters, paths, options);
  // Each switch can hold only one of the two detection clusters.
  EXPECT_FALSE(placement.feasible);
  EXPECT_GT(placement.total_instances, 0u);
}

TEST(PlacementTest, EmptyPathsYieldZeroCoverage) {
  const auto h = scenarios::BuildHotnetsTopology();
  const auto clusters =
      std::vector<Cluster>{MakeCluster(PpmRole::kDetection, ResourceVector{1, 1, 0, 1})};
  const auto placement = PlaceClusters(h.topo, clusters, {});
  EXPECT_DOUBLE_EQ(placement.detector_path_coverage, 0.0);
}

}  // namespace
}  // namespace fastflex::scheduler
