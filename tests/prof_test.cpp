// Unit tests for the self-observability layer: the sampling profiler
// (exact site counts, subtree sampling, region density, the deterministic
// export view), the flight-recorder ring, and the exporter edge cases the
// replay-identity guarantee leans on (prof section isolation, optional
// sections, large-count histograms).
#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "telemetry/export.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/prof.h"
#include "telemetry/telemetry.h"

namespace fastflex::telemetry {
namespace {

// ---------------------------------------------------------------- Profiler

TEST(Profiler, DisabledProfilerIsInert) {
  Profiler prof;
  EXPECT_FALSE(prof.enabled());
  EXPECT_EQ(prof.enabled_self(), nullptr);
  // The pattern every hook site uses: a scope on the cached (null) pointer.
  { ProfScope scope(prof.enabled_self(), ProfSite::kPipelineWalk); }
  EXPECT_EQ(prof.CallsAt(ProfSite::kPipelineWalk), 0u);
  EXPECT_FALSE(prof.HasData());
}

TEST(Profiler, EnableRoundsStrideUpToPowerOfTwo) {
  Profiler p1;
  p1.Enable(100);
  EXPECT_EQ(p1.stride(), 128u);
  Profiler p2;
  p2.Enable(1);
  EXPECT_EQ(p2.stride(), 1u);
  Profiler p3;
  p3.Enable(0);  // degenerate request still yields a usable sampler
  EXPECT_EQ(p3.stride(), 1u);
  // Enable pre-creates the top-level node of every site.
  EXPECT_EQ(p1.nodes().size(), Profiler::kSiteCount);
}

TEST(Profiler, CallCountsAreExactSamplesAreStrided) {
  Profiler prof;
  prof.Enable(256);
  for (int i = 0; i < 1000; ++i) {
    ProfScope scope(prof.enabled_self(), ProfSite::kPipelineWalk);
  }
  // Every entry counts; entries 0, 256, 512, 768 sample.
  EXPECT_EQ(prof.CallsAt(ProfSite::kPipelineWalk), 1000u);
  std::uint64_t walk_samples = 0;
  for (const auto& n : prof.nodes()) {
    if (n.site == ProfSite::kPipelineWalk && n.parent == nullptr)
      walk_samples = n.samples;
  }
  EXPECT_EQ(walk_samples, 4u);
  EXPECT_TRUE(prof.HasData());
}

TEST(Profiler, StrideOneSamplesEveryEntry) {
  Profiler prof;
  prof.Enable(1);
  for (int i = 0; i < 10; ++i) {
    ProfScope scope(prof.enabled_self(), ProfSite::kHostStack);
  }
  for (const auto& n : prof.nodes()) {
    if (n.site == ProfSite::kHostStack && n.parent == nullptr)
      EXPECT_EQ(n.samples, 10u);
  }
}

TEST(Profiler, SampledEntryCapturesItsSubtree) {
  Profiler prof;
  prof.Enable(256);
  {
    // Entry 0 of kEventDispatch samples; the nested walk scope must ride
    // the open sample into a child node even though its own site counter
    // (also 0... but nested-under-a-sample short-circuits the stride test).
    ProfScope outer(prof.enabled_self(), ProfSite::kEventDispatch);
    ProfScope inner(prof.enabled_self(), ProfSite::kPipelineWalk);
  }
  {
    // Entry 1 of kEventDispatch does NOT sample; its nested scope is then a
    // top-level entry for kPipelineWalk (counter 1: not sampled either).
    ProfScope outer(prof.enabled_self(), ProfSite::kEventDispatch);
    ProfScope inner(prof.enabled_self(), ProfSite::kPipelineWalk);
  }
  EXPECT_EQ(prof.CallsAt(ProfSite::kEventDispatch), 2u);
  EXPECT_EQ(prof.CallsAt(ProfSite::kPipelineWalk), 2u);
  bool found_child = false;
  for (std::size_t i = 0; i < prof.nodes().size(); ++i) {
    const auto& n = prof.nodes()[i];
    if (n.site == ProfSite::kPipelineWalk && n.parent != nullptr) {
      found_child = true;
      EXPECT_EQ(n.parent->site, ProfSite::kEventDispatch);
      EXPECT_EQ(n.samples, 1u);
      EXPECT_EQ(prof.PathOf(i), "event_dispatch.pipeline_walk");
    }
  }
  EXPECT_TRUE(found_child);
}

TEST(Profiler, TreeSaturationFallsBackToRootNodes) {
  Profiler prof;
  prof.Enable(1);  // sample everything: deep nesting creates chain nodes
  // Recursive alternating nesting grows a fresh node per depth until the
  // arena cap; past it, scopes must attribute to root nodes, not grow.
  std::function<void(int)> nest = [&](int depth) {
    if (depth == 0) return;
    ProfScope scope(prof.enabled_self(), depth % 2 == 0
                                             ? ProfSite::kPipelineWalk
                                             : ProfSite::kHostStack);
    nest(depth - 1);
  };
  nest(2000);
  EXPECT_EQ(prof.nodes().size(), Profiler::kMaxNodes);
  EXPECT_EQ(prof.CallsAt(ProfSite::kPipelineWalk) +
                prof.CallsAt(ProfSite::kHostStack),
            2000u);
}

TEST(Profiler, RegionEventsExactTotalsClampAndBins) {
  Profiler prof;
  prof.Enable();
  for (int i = 0; i < 130; ++i) prof.RegionEvent(5, i * kMillisecond);
  prof.RegionEvent(Profiler::kMaxRegions + 7, 0);  // clamps to last slot
  EXPECT_EQ(prof.regions()[5].events, 130u);
  EXPECT_EQ(prof.regions()[Profiler::kMaxRegions - 1].events, 1u);
  // Ticks 0, 64, 128 sample into region 5's bins (all land in bin 0:
  // 129 ms < the 100 ms bin only for the first... t=i ms, so tick 128 is
  // t=128 ms -> bin 1).
  std::uint64_t binned = 0;
  for (auto b : prof.regions()[5].bins) binned += b;
  EXPECT_EQ(binned, 3u);
}

TEST(Profiler, QueueOccupancySummary) {
  Profiler prof;
  prof.Enable();
  prof.QueueOccupancy(10);
  prof.QueueOccupancy(30);
  EXPECT_EQ(prof.occupancy().count(), 2u);
  EXPECT_DOUBLE_EQ(prof.occupancy().mean(), 20.0);
  EXPECT_DOUBLE_EQ(prof.occupancy().max(), 30.0);
}

TEST(Profiler, DeterministicViewOmitsWallClock) {
  Profiler prof;
  prof.Enable(1);
  { ProfScope scope(prof.enabled_self(), ProfSite::kPipelineWalk); }
  prof.RecordExportNs(1234);
  const std::string wall = prof.ToJsonSection(/*include_wall=*/true);
  const std::string det = prof.ToJsonSection(/*include_wall=*/false);
  EXPECT_NE(wall.find("\"sampled_ns\""), std::string::npos);
  EXPECT_NE(wall.find("\"est_ns\""), std::string::npos);
  EXPECT_NE(wall.find("\"export_ns\""), std::string::npos);
  EXPECT_EQ(det.find("\"sampled_ns\""), std::string::npos);
  EXPECT_EQ(det.find("\"est_ns\""), std::string::npos);
  EXPECT_EQ(det.find("\"export_ns\""), std::string::npos);
  // Counts survive in both views.
  EXPECT_NE(det.find("\"calls\":1"), std::string::npos);
}

TEST(Profiler, EstimateScalesSampledTimeByStride) {
  Profiler prof;
  prof.Enable(256);
  Profiler::Node n;
  n.sampled_ns = 1000;
  EXPECT_DOUBLE_EQ(prof.EstimateNs(n), 256000.0);
}

// ---------------------------------------------------------- FlightRecorder

TEST(FlightRecorder, RingOverwritesOldestOnceFull) {
  FlightRecorder fr(4);
  for (int i = 0; i < 6; ++i) {
    fr.Record(i * kSecond, FlightKind::kLinkDrop, i);
  }
  EXPECT_EQ(fr.size(), 4u);
  EXPECT_EQ(fr.total(), 6u);
  EXPECT_EQ(fr.overwritten(), 2u);
  const auto snap = fr.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.front().a, 2);  // oldest surviving record first
  EXPECT_EQ(snap.back().a, 5);
}

TEST(FlightRecorder, CountsByKindAndDumpSemantics) {
  FlightRecorder fr;
  fr.Record(1, FlightKind::kModeFlip, 4, 0x3, 1);
  fr.Record(2, FlightKind::kAlarm, 4, 0x1, 1);
  fr.Record(3, FlightKind::kModeFlip, 5, 0x3, 1);
  EXPECT_EQ(fr.CountOf(FlightKind::kModeFlip), 2u);
  EXPECT_EQ(fr.CountOf(FlightKind::kAlarm), 1u);
  EXPECT_EQ(fr.CountOf(FlightKind::kSwitchCrash), 0u);

  const std::string dump = fr.RequestDump("unit_test", 4);
  EXPECT_NE(dump.find("\"reason\":\"unit_test\""), std::string::npos);
  EXPECT_EQ(fr.dumps(), 1u);
  EXPECT_EQ(fr.last_dump(), dump);
  // The cut itself is recorded, so a later dump shows where the first was.
  EXPECT_EQ(fr.CountOf(FlightKind::kDump), 1u);
}

TEST(FlightRecorder, JsonSectionCarriesCountsAndRing) {
  FlightRecorder fr(8);
  fr.Record(7, FlightKind::kQueueSpike, 3, 900, 1000);
  const std::string json = fr.ToJsonSection();
  EXPECT_NE(json.find("\"counts\":{\"queue_spike\":1}"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"queue_spike\""), std::string::npos);
  EXPECT_NE(json.find("\"capacity\":8"), std::string::npos);
}

// ----------------------------------------------------------- Export edges

TEST(Export, EmptyRecorderOmitsOptionalSections) {
  Recorder rec;
  const std::string json = ToJson(rec);
  EXPECT_NE(json.find("\"counters\":{}"), std::string::npos);
  EXPECT_NE(json.find("\"events\":[]"), std::string::npos);
  // Optional sections stay out until they carry data: artifact bytes of a
  // feature-free run never change when a feature ships.
  EXPECT_EQ(json.find("\"int\":"), std::string::npos);
  EXPECT_EQ(json.find("\"fault\":"), std::string::npos);
  EXPECT_EQ(json.find("\"syn\":"), std::string::npos);
  EXPECT_EQ(json.find("\"flight\":"), std::string::npos);
  EXPECT_EQ(json.find("\"prof\":"), std::string::npos);
}

TEST(Export, ProfSectionOnlyWhenEnabledAndRequested) {
  Recorder rec;
  EXPECT_EQ(ToJson(rec).find("\"prof\":"), std::string::npos);  // disabled

  rec.prof().Enable();
  { ProfScope scope(rec.prof().enabled_self(), ProfSite::kPipelineWalk); }
  EXPECT_NE(ToJson(rec).find("\"prof\":"), std::string::npos);
  // Replay comparisons serialize with the section off.
  EXPECT_EQ(ToJson(rec, ExportOptions{.include_prof = false}).find("\"prof\":"),
            std::string::npos);
}

TEST(Export, NonProfSectionsByteIdenticalProfOnVsOff) {
  // Two recorders fed the exact same telemetry; one also profiles.  With
  // the prof section excluded the documents must match byte for byte —
  // the in-test version of the bench_prof determinism gate.
  auto feed = [](Recorder& rec) {
    auto& m = rec.metrics();
    m.GetCounter("walks").Inc(42);
    m.GetGauge("mode").Set(3.0);
    m.GetSeries("goodput", kSecond).Add(2 * kSecond, 0.75);
    auto& h = m.GetHistogram("lat_ms", 0.0, 50.0, 10);
    h.Add(3.5);
    h.Add(49.0);
    rec.trace().Event(5, "alarm", {{"switch", 2}});
    rec.flight().Record(5, FlightKind::kAlarm, 2, 1, 0);
  };
  Recorder off;
  Recorder on;
  on.prof().Enable();
  feed(off);
  feed(on);
  {  // profiling activity that must not leak into non-prof sections
    ProfScope s1(on.prof().enabled_self(), ProfSite::kEventDispatch);
    ProfScope s2(on.prof().enabled_self(), ProfSite::kPipelineWalk);
    on.prof().RegionEvent(1, 2 * kSecond);
    on.prof().QueueOccupancy(17);
  }
  const ExportOptions no_prof{.include_prof = false};
  EXPECT_EQ(ToJson(off, no_prof), ToJson(on, no_prof));
  EXPECT_NE(ToJson(off, no_prof), ToJson(on));  // full export does differ
}

TEST(Export, LargeCountHistogramSerializesConsistently) {
  Recorder rec;
  auto& h = rec.metrics().GetHistogram("big", 0.0, 1.0, 4);
  for (int i = 0; i < 200000; ++i) h.Add((i % 100) / 100.0);
  h.Add(-5.0);  // clamps to the lowest bucket
  h.Add(9.0);   // clamps to the highest bucket
  const std::string json = ToJson(rec);
  EXPECT_NE(json.find("\"count\":200002"), std::string::npos);
  std::uint64_t bucket_sum = 0;
  for (std::size_t i = 0; i < h.num_buckets(); ++i) bucket_sum += h.bucket_count(i);
  EXPECT_EQ(bucket_sum, 200002u);
  EXPECT_GE(h.Percentile(99), h.Percentile(50));
}

TEST(Export, ExporterMeasuresItselfWithoutSelfReference) {
  Recorder rec;
  rec.prof().Enable();
  rec.metrics().GetCounter("c").Inc();
  (void)ToJson(rec);
  // The export scope ran once; its wall time went to RecordExportNs (out
  // of tree), so the prof section never times its own serialization.
  EXPECT_EQ(rec.prof().CallsAt(ProfSite::kExport), 1u);
}

}  // namespace
}  // namespace fastflex::telemetry
