// Property-based tests over randomized inputs: path-algorithm and TE
// invariants on random connected graphs, mode-protocol convergence on
// random topologies, and transport sanity across a parameter grid.
#include <gtest/gtest.h>

#include <set>

#include "control/routes.h"
#include "runtime/mode_protocol.h"
#include "scheduler/te.h"
#include "sim/network.h"
#include "sim/switch_node.h"
#include "util/rng.h"

namespace fastflex {
namespace {

/// Random connected graph: a spanning tree plus extra random edges, plus
/// `hosts` hosts on random switches.
sim::Topology RandomTopology(std::uint64_t seed, int switches, int extra_edges, int hosts) {
  Rng rng(seed);
  sim::Topology t;
  std::vector<NodeId> sw;
  for (int i = 0; i < switches; ++i) {
    sw.push_back(t.AddNode(sim::NodeKind::kSwitch, "s" + std::to_string(i)));
  }
  for (int i = 1; i < switches; ++i) {
    const auto parent = static_cast<std::size_t>(rng.UniformInt(0, i - 1));
    t.AddDuplexLink(sw[parent], sw[static_cast<std::size_t>(i)],
                    10e6 * static_cast<double>(rng.UniformInt(1, 10)),
                    kMillisecond * rng.UniformInt(1, 5), 150'000);
  }
  for (int e = 0; e < extra_edges; ++e) {
    const auto a = static_cast<std::size_t>(rng.UniformInt(0, switches - 1));
    const auto b = static_cast<std::size_t>(rng.UniformInt(0, switches - 1));
    if (a == b || t.LinkBetween(sw[a], sw[b])) continue;
    t.AddDuplexLink(sw[a], sw[b], 10e6 * static_cast<double>(rng.UniformInt(1, 10)),
                    kMillisecond * rng.UniformInt(1, 5), 150'000);
  }
  for (int h = 0; h < hosts; ++h) {
    const NodeId host = t.AddNode(sim::NodeKind::kHost, "h" + std::to_string(h));
    t.AddDuplexLink(sw[static_cast<std::size_t>(rng.UniformInt(0, switches - 1))], host,
                    100e6, kMillisecond, 150'000);
  }
  return t;
}

bool IsValidPath(const sim::Topology& t, const sim::Path& p, NodeId src, NodeId dst) {
  if (p.empty()) return false;
  if (p.front() != src || p.back() != dst) return false;
  std::set<NodeId> seen;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (!seen.insert(p[i]).second) return false;  // loop
    if (i + 1 < p.size() && !t.LinkBetween(p[i], p[i + 1])) return false;
    // Hosts only at the endpoints.
    if (i != 0 && i + 1 != p.size() && t.node(p[i]).kind == sim::NodeKind::kHost)
      return false;
  }
  return true;
}

class RandomGraphTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomGraphTest, ShortestPathsAreValidAndMinimal) {
  const auto t = RandomTopology(GetParam(), 12, 8, 4);
  for (const auto& a : t.nodes()) {
    for (const auto& b : t.nodes()) {
      if (a.id == b.id) continue;
      const sim::Path p = t.ShortestPath(a.id, b.id);
      if (p.empty()) continue;  // host-transit-only connectivity is allowed to fail
      ASSERT_TRUE(IsValidPath(t, p, a.id, b.id))
          << "seed " << GetParam() << " " << a.name << "->" << b.name;
    }
  }
}

TEST_P(RandomGraphTest, KShortestAreSortedValidAndDistinct) {
  const auto t = RandomTopology(GetParam(), 10, 10, 2);
  const auto& nodes = t.nodes();
  const NodeId src = nodes[static_cast<std::size_t>(t.NumNodes()) - 2].id;  // a host
  const NodeId dst = nodes[static_cast<std::size_t>(t.NumNodes()) - 1].id;  // a host
  const auto paths = t.KShortestPaths(src, dst, 6);
  std::set<sim::Path> distinct;
  std::size_t prev_len = 0;
  for (const auto& p : paths) {
    ASSERT_TRUE(IsValidPath(t, p, src, dst));
    EXPECT_TRUE(distinct.insert(p).second) << "duplicate path";
    EXPECT_GE(p.size(), prev_len);  // non-decreasing cost (uniform weights)
    prev_len = p.size();
  }
}

TEST_P(RandomGraphTest, TeSolutionRespectsInvariants) {
  const auto t = RandomTopology(GetParam(), 12, 8, 6);
  Rng rng(GetParam() ^ 0xfeed);
  std::vector<scheduler::Demand> demands;
  std::vector<NodeId> hosts;
  for (const auto& n : t.nodes()) {
    if (n.kind == sim::NodeKind::kHost) hosts.push_back(n.id);
  }
  for (int i = 0; i < 10; ++i) {
    const NodeId a = hosts[static_cast<std::size_t>(rng.UniformInt(0, 5))];
    NodeId b = hosts[static_cast<std::size_t>(rng.UniformInt(0, 5))];
    if (a == b) continue;
    demands.push_back({a, b, 1e6 * static_cast<double>(rng.UniformInt(1, 5)), i});
  }
  const auto sol = scheduler::SolveTe(t, demands);

  // (1) Paths valid; (2) link loads equal the sum of routed demands;
  // (3) max utilization consistent with the loads.
  std::vector<double> expected_load(t.NumLinks(), 0.0);
  for (std::size_t i = 0; i < demands.size(); ++i) {
    if (sol.paths[i].empty()) continue;
    ASSERT_TRUE(IsValidPath(t, sol.paths[i], demands[i].src_host, demands[i].dst_host));
    for (LinkId l : t.PathLinks(sol.paths[i])) {
      expected_load[static_cast<std::size_t>(l)] += demands[i].rate_bps;
    }
  }
  double max_util = 0.0;
  for (std::size_t l = 0; l < t.NumLinks(); ++l) {
    EXPECT_NEAR(sol.link_load_bps[l], expected_load[l], 1.0);
    max_util = std::max(max_util, expected_load[l] / t.link(static_cast<LinkId>(l)).rate_bps);
  }
  EXPECT_NEAR(sol.max_utilization, max_util, 1e-9);
}

TEST_P(RandomGraphTest, ModeFloodConvergesOnRandomGraphs) {
  auto topo = RandomTopology(GetParam(), 14, 10, 2);
  sim::Network net(topo, GetParam());
  control::InstallDstRoutes(net);
  std::vector<std::unique_ptr<dataplane::Pipeline>> pipelines;
  std::vector<std::shared_ptr<runtime::ModeProtocolPpm>> agents;
  for (const auto& n : net.topology().nodes()) {
    if (n.kind != sim::NodeKind::kSwitch) continue;
    auto pipe = std::make_unique<dataplane::Pipeline>(dataplane::DefaultSwitchCapacity());
    auto agent = std::make_shared<runtime::ModeProtocolPpm>(&net, net.switch_at(n.id),
                                                            pipe.get());
    pipe->Install(agent);
    net.switch_at(n.id)->SetProcessor(pipe.get());
    pipelines.push_back(std::move(pipe));
    agents.push_back(std::move(agent));
  }
  agents.front()->RaiseAlarm(dataplane::attack::kLinkFlooding,
                             dataplane::mode::kLfaReroute, true);
  net.RunUntil(kSecond);  // plenty for any 14-switch graph
  for (const auto& p : pipelines) {
    EXPECT_TRUE(p->ModeActive(dataplane::mode::kLfaReroute)) << "seed " << GetParam();
  }
}

TEST_P(RandomGraphTest, DstRoutingDeliversBetweenAllHostPairs) {
  auto topo = RandomTopology(GetParam(), 10, 6, 4);
  sim::Network net(topo, GetParam());
  control::InstallDstRoutes(net);
  std::vector<NodeId> hosts;
  for (const auto& n : net.topology().nodes()) {
    if (n.kind == sim::NodeKind::kHost) hosts.push_back(n.id);
  }
  std::vector<FlowId> flows;
  for (std::size_t a = 0; a < hosts.size(); ++a) {
    for (std::size_t b = 0; b < hosts.size(); ++b) {
      if (a == b) continue;
      sim::UdpParams udp;
      udp.rate_bps = 100e3;
      udp.packet_bytes = 200;
      flows.push_back(net.StartUdpFlow(hosts[a], hosts[b], udp, 0));
    }
  }
  net.RunUntil(2 * kSecond);
  for (FlowId f : flows) {
    EXPECT_GT(net.flow_stats(f).delivered_bytes, 10'000u) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

/// Transport sanity grid: capacity x RTT x queue depth.
class TcpGridTest
    : public ::testing::TestWithParam<std::tuple<double, SimTime, std::uint32_t>> {};

TEST_P(TcpGridTest, SingleFlowUtilizationInBand) {
  const auto [rate, delay, queue] = GetParam();
  sim::Topology t;
  const NodeId s1 = t.AddNode(sim::NodeKind::kSwitch, "s1");
  const NodeId s2 = t.AddNode(sim::NodeKind::kSwitch, "s2");
  const NodeId h1 = t.AddNode(sim::NodeKind::kHost, "h1");
  const NodeId h2 = t.AddNode(sim::NodeKind::kHost, "h2");
  t.AddDuplexLink(s1, s2, rate, delay, queue);
  t.AddDuplexLink(s1, h1, 1e9, kMillisecond, 1'000'000);
  t.AddDuplexLink(s2, h2, 1e9, kMillisecond, 1'000'000);
  sim::Network net(t, 5);
  control::InstallDstRoutes(net);
  const FlowId f = net.StartTcpFlow(h1, h2, sim::TcpParams{}, kSecond / 2);
  net.RunUntil(20 * kSecond);
  // Average over the second half of the run.
  const auto& series = net.flow_stats(f).goodput;
  double bytes = 0;
  for (std::size_t b = 100; b < 200; ++b) bytes += series.BinTotal(b);
  const double utilization = bytes * 8.0 / 10.0 / rate;
  // Reno-style AIMD fills a pipe at +1 MSS/RTT: with a buffer much smaller
  // than the BDP the ramp to full window takes longer than this test runs
  // (e.g. 80 Mbps x 100 ms needs ~80 s), so the floor is BDP-aware.
  const double bdp_bytes = rate / 8.0 * ToSeconds(2 * delay + 4 * kMillisecond);
  const double floor = static_cast<double>(queue) >= bdp_bytes / 2.0 ? 0.40 : 0.12;
  EXPECT_GT(utilization, floor) << "rate=" << rate << " delay=" << delay << " q=" << queue;
  EXPECT_LT(utilization, 1.02);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TcpGridTest,
    ::testing::Combine(::testing::Values(5e6, 20e6, 80e6),
                       ::testing::Values(5 * kMillisecond, 20 * kMillisecond,
                                         50 * kMillisecond),
                       ::testing::Values(50'000u, 150'000u)));

}  // namespace
}  // namespace fastflex
