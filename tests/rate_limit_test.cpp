// Distributed rate-limiting tests (the network-wide detection example of
// Section 3.3): sync view exchange, global estimation, flow-proportional
// enforcement without a central controller.
#include <gtest/gtest.h>

#include "boosters/rate_limiter.h"
#include "test_net.h"

namespace fastflex::boosters {
namespace {

using fastflex::testing::MakeLineNet;
using fastflex::testing::TestNet;

struct RateLimitHarness {
  TestNet tn;
  std::vector<std::shared_ptr<GlobalRateLimiterPpm>> limiters;
  Address service;

  explicit RateLimitHarness(RateLimitConfig config, int switches = 3,
                            int extra_hosts = 1)
      : tn(MakeLineNet(switches, {}, 1, extra_hosts)) {
    service = tn.net->topology().node(tn.hosts[1]).address;
    for (std::size_t i = 0; i < tn.switches.size(); ++i) {
      auto limiter = std::make_shared<GlobalRateLimiterPpm>(
          tn.net.get(), tn.sw(i), tn.pipe(i), /*service_key=*/7,
          std::vector<Address>{service}, config);
      tn.pipe(i)->Install(limiter);
      limiter->StartTimers();
      limiters.push_back(limiter);
    }
  }

  void Activate() {
    for (std::size_t i = 0; i < tn.switches.size(); ++i) {
      tn.pipe(i)->ActivateMode(dataplane::mode::kGlobalRateLimit);
    }
  }
};

TEST(RateLimitTest, SyncProbesExchangeViews) {
  RateLimitConfig config;
  config.global_limit_bps = 50e6;
  RateLimitHarness h(config);
  h.Activate();
  sim::UdpParams udp;
  udp.rate_bps = 10e6;
  h.tn.net->StartUdpFlow(h.tn.hosts[0], h.tn.hosts[1], udp, 0);
  h.tn.net->RunUntil(2 * kSecond);
  for (const auto& limiter : h.limiters) {
    EXPECT_GT(limiter->syncs_sent(), 5u);
    EXPECT_GT(limiter->syncs_received(), 5u);
  }
  // Every switch on the path saw ~10 Mbps locally; since it is the SAME
  // traffic at each hop, the global estimate overcounts by design unless
  // enforcement points are edge-only — here the first switch's local view
  // matches the actual offered load.
  EXPECT_NEAR(h.limiters[0]->LocalRateBps(), 10e6, 2e6);
}

TEST(RateLimitTest, UnderLimitNothingDropped) {
  RateLimitConfig config;
  config.global_limit_bps = 100e6;
  RateLimitHarness h(config);
  h.Activate();
  sim::UdpParams udp;
  udp.rate_bps = 5e6;
  h.tn.net->StartUdpFlow(h.tn.hosts[0], h.tn.hosts[1], udp, 0);
  h.tn.net->RunUntil(3 * kSecond);
  for (const auto& limiter : h.limiters) EXPECT_EQ(limiter->dropped(), 0u);
}

TEST(RateLimitTest, GlobalLimitEnforcedAcrossEnforcers) {
  // Enforcement only at the two edge switches (where traffic enters),
  // matching the DRL deployment model: distinct traffic at each enforcer.
  RateLimitConfig config;
  config.global_limit_bps = 10e6;
  TestNet tn = MakeLineNet(3, {}, 1, /*extra_front_hosts=*/1);
  const Address service = tn.net->topology().node(tn.hosts[1]).address;
  // Limiters only on switch 0 (sees both senders' traffic enter).
  auto limiter = std::make_shared<GlobalRateLimiterPpm>(
      tn.net.get(), tn.sw(0), tn.pipe(0), 7, std::vector<Address>{service}, config);
  tn.pipe(0)->Install(limiter);
  limiter->StartTimers();
  tn.pipe(0)->ActivateMode(dataplane::mode::kGlobalRateLimit);

  sim::UdpParams udp;
  udp.rate_bps = 15e6;
  udp.packet_bytes = 1000;
  const FlowId f1 = tn.net->StartUdpFlow(tn.hosts[0], tn.hosts[1], udp, 0);
  const FlowId f2 = tn.net->StartUdpFlow(tn.hosts[2], tn.hosts[1], udp, 0);
  tn.net->RunUntil(5 * kSecond);

  EXPECT_GT(limiter->dropped(), 0u);
  // Delivered aggregate respects the 10 Mbps limit (allow startup slack
  // while the limiter converges onto its share).
  const auto& s1 = tn.net->flow_stats(f1);
  const auto& s2 = tn.net->flow_stats(f2);
  const double delivered_bps =
      static_cast<double>(s1.delivered_bytes + s2.delivered_bytes) * 8.0 / 5.0;
  EXPECT_LT(delivered_bps, 14e6);
  EXPECT_GT(delivered_bps, 6e6);  // but traffic does flow
}

TEST(RateLimitTest, ViewsAgeOutAfterTimeout) {
  RateLimitConfig config;
  config.global_limit_bps = 10e6;
  config.view_timeout = 300 * kMillisecond;
  RateLimitHarness h(config);
  h.Activate();
  sim::UdpParams udp;
  udp.rate_bps = 20e6;
  const FlowId f = h.tn.net->StartUdpFlow(h.tn.hosts[0], h.tn.hosts[1], udp, 0);
  h.tn.net->RunUntil(2 * kSecond);
  const double during = h.limiters[2]->GlobalEstimateBps();
  EXPECT_GT(during, 10e6);
  h.tn.net->StopFlow(f);
  h.tn.net->RunUntil(4 * kSecond);
  // Quiet network: local rates drop to zero and stale views age out.
  EXPECT_LT(h.limiters[2]->GlobalEstimateBps(), 1e6);
}

TEST(RateLimitTest, InactiveModeDoesNotSyncOrDrop) {
  RateLimitConfig config;
  config.global_limit_bps = 1e6;  // would drop aggressively if active
  RateLimitHarness h(config);
  // Mode never activated.
  sim::UdpParams udp;
  udp.rate_bps = 20e6;
  h.tn.net->StartUdpFlow(h.tn.hosts[0], h.tn.hosts[1], udp, 0);
  h.tn.net->RunUntil(2 * kSecond);
  for (const auto& limiter : h.limiters) {
    EXPECT_EQ(limiter->dropped(), 0u);
    EXPECT_EQ(limiter->syncs_sent(), 0u);
  }
}

TEST(RateLimitTest, NonServiceTrafficUnaffected) {
  RateLimitConfig config;
  config.global_limit_bps = 1e6;
  RateLimitHarness h(config, 3, 1);
  h.Activate();
  // Traffic to a NON-service destination (h0 direction) sails through.
  sim::UdpParams udp;
  udp.rate_bps = 20e6;
  const FlowId f = h.tn.net->StartUdpFlow(h.tn.hosts[1], h.tn.hosts[0], udp, 0);
  h.tn.net->RunUntil(3 * kSecond);
  for (const auto& limiter : h.limiters) EXPECT_EQ(limiter->dropped(), 0u);
  EXPECT_GT(h.tn.net->flow_stats(f).delivered_bytes, 5'000'000u);
}

}  // namespace
}  // namespace fastflex::boosters
