// Deterministic-replay regression test: running the Figure 3 rolling-LFA
// scenario twice with the same seed must produce bit-identical telemetry
// JSON.  This pins the whole stack — event queue ordering, RNG streams,
// TCP dynamics, mode protocol, and the exporter — as a replayable function
// of (options, seed).
#include <gtest/gtest.h>

#include <string>

#include "scenarios/fig3.h"
#include "scenarios/syn_flood_fig.h"
#include "telemetry/export.h"
#include "telemetry/telemetry.h"

namespace fastflex::scenarios {
namespace {

Fig3Options ShortRun(telemetry::Recorder* rec, std::uint64_t seed) {
  Fig3Options opt;
  opt.defense = DefenseKind::kFastFlex;
  opt.seed = seed;
  opt.duration = 30 * kSecond;  // long enough for attack + mode changes
  opt.attack_at = 8 * kSecond;
  opt.recorder = rec;
  return opt;
}

TEST(Replay, SameSeedProducesBitIdenticalTelemetryJson) {
  telemetry::Recorder rec1;
  const Fig3Result r1 = RunFig3(ShortRun(&rec1, 1));

  telemetry::Recorder rec2;
  const Fig3Result r2 = RunFig3(ShortRun(&rec2, 1));

  const std::string json1 = telemetry::ToJson(rec1);
  const std::string json2 = telemetry::ToJson(rec2);
  EXPECT_EQ(json1, json2) << "same-seed replay diverged";

  // The runs must actually have exercised the defense: the recorder is
  // only bit-identical in an interesting way if modes flipped and the
  // result series is populated.
  EXPECT_GT(rec1.trace().CountOf("mode_change"), 0u);
  EXPECT_FALSE(r1.normalized.empty());
  EXPECT_EQ(r1.normalized.size(), r2.normalized.size());
  EXPECT_GT(r1.first_alarm, 0);
  EXPECT_EQ(r1.first_alarm, r2.first_alarm);

  // Harvested artifacts the ISSUE pins: normalized series + link counters.
  EXPECT_NE(json1.find("\"fig3.normalized\""), std::string::npos);
  EXPECT_NE(json1.find("\"link.0.tx_packets\""), std::string::npos);

  // The in-band telemetry section: FastFlex runs deploy INT by default, the
  // alarm turns stamping on, so journeys must exist — and the `int` section
  // must replay bit-identically (asserted directly, in addition to the
  // full-JSON comparison above, so an exporter change cannot drop it
  // silently).
  EXPECT_NE(json1.find("\"int\":{\"journeys\":"), std::string::npos);
  EXPECT_GT(rec1.int_collector().journeys(), 0u);
  EXPECT_EQ(rec1.int_collector().journeys(), rec2.int_collector().journeys());
  EXPECT_EQ(rec1.int_collector().ToJsonSection(), rec2.int_collector().ToJsonSection());
  EXPECT_NE(json1.find("\"fig3.int.journeys\""), std::string::npos);
}

SynFloodFigOptions ShortSynRun(telemetry::Recorder* rec, std::uint64_t seed) {
  SynFloodFigOptions opt;
  opt.defense = DefenseKind::kFastFlex;
  opt.seed = seed;
  opt.duration = 20 * kSecond;
  opt.attack_at = 6 * kSecond;
  opt.flood.syn_rate_per_bot = 400.0;
  opt.flood.syn_rate_alarm = 500.0;
  // Sessions span ~0.5s-14s, straddling the 6s flood onset so a good chunk
  // of the handshakes run through the active proxy.
  opt.flood.sessions_per_client = 10;
  opt.flood.session_interval = 1500 * kMillisecond;
  opt.recorder = rec;
  return opt;
}

TEST(Replay, SynFloodSameSeedProducesBitIdenticalTelemetryJson) {
  // The split-proxy path adds RNG consumers (spoof-pool draws, per-bot
  // jitter), unordered containers, and a new telemetry section — all of
  // which must still replay as a pure function of (options, seed).
  telemetry::Recorder rec1;
  const SynFloodFigResult r1 = RunSynFloodFig(ShortSynRun(&rec1, 3));
  telemetry::Recorder rec2;
  const SynFloodFigResult r2 = RunSynFloodFig(ShortSynRun(&rec2, 3));

  const std::string json1 = telemetry::ToJson(rec1);
  EXPECT_EQ(json1, telemetry::ToJson(rec2)) << "same-seed syn replay diverged";

  // The replay is only interesting if the defense actually engaged.
  EXPECT_GT(r1.flood_syns, 0u);
  EXPECT_GT(r1.cookies_sent, 0u);
  EXPECT_GT(r1.handshakes_validated, 0u);
  EXPECT_GT(r1.modes_active_at, 0);
  EXPECT_GT(r1.established, 0);
  EXPECT_EQ(r1.established, r2.established);
  EXPECT_EQ(r1.delivered_bytes, r2.delivered_bytes);
  EXPECT_EQ(r1.flood_syns, r2.flood_syns);
  EXPECT_EQ(r1.filter_inserts, r2.filter_inserts);
  EXPECT_EQ(r1.events_processed, r2.events_processed);

  // The "syn" section and the harvested result gauges are present.
  EXPECT_NE(json1.find("\"syn\":{"), std::string::npos);
  EXPECT_NE(json1.find("\"synfig.established\""), std::string::npos);
  EXPECT_NE(json1.find("\"synfig.cookies_sent\""), std::string::npos);
}

TEST(Replay, DifferentSeedsDiverge) {
  // Guard against the exporter (or the scenario) ignoring its inputs: a
  // different seed must change the recorded telemetry.
  telemetry::Recorder rec1;
  RunFig3(ShortRun(&rec1, 1));
  telemetry::Recorder rec2;
  RunFig3(ShortRun(&rec2, 2));
  EXPECT_NE(telemetry::ToJson(rec1), telemetry::ToJson(rec2));
}

}  // namespace
}  // namespace fastflex::scenarios
