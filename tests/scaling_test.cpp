// Dynamic-scaling tests (Section 3.4, Figure 1d): the full repurposing
// sequence — neighbor notification, fast reroute around the blackout, state
// migration, and return to service.
#include <gtest/gtest.h>

#include "boosters/shared_ppms.h"
#include "runtime/scaling.h"
#include "test_net.h"

namespace fastflex::runtime {
namespace {

using fastflex::testing::MakeLineNet;
using fastflex::testing::TestNet;

/// Triangle topology with hosts so fast reroute has a backup path.
struct TriangleNet {
  TestNet tn;
  // switches: 0 - 1 - 2 in a line PLUS a 0-2 shortcut link added before
  // Network construction.
};

TestNet MakeTriangle() {
  TestNet tn;
  for (int i = 0; i < 3; ++i) {
    tn.switches.push_back(tn.topo.AddNode(sim::NodeKind::kSwitch, "s" + std::to_string(i)));
  }
  tn.topo.AddDuplexLink(tn.switches[0], tn.switches[1], 100e6, kMillisecond, 200'000);
  tn.topo.AddDuplexLink(tn.switches[1], tn.switches[2], 100e6, kMillisecond, 200'000);
  tn.topo.AddDuplexLink(tn.switches[0], tn.switches[2], 100e6, kMillisecond, 200'000);
  tn.hosts.push_back(tn.topo.AddNode(sim::NodeKind::kHost, "h0"));
  tn.topo.AddDuplexLink(tn.switches[0], tn.hosts[0], 100e6, kMillisecond, 200'000);
  tn.hosts.push_back(tn.topo.AddNode(sim::NodeKind::kHost, "h1"));
  tn.topo.AddDuplexLink(tn.switches[1], tn.hosts[1], 100e6, kMillisecond, 200'000);
  tn.hosts.push_back(tn.topo.AddNode(sim::NodeKind::kHost, "h2"));
  tn.topo.AddDuplexLink(tn.switches[2], tn.hosts[2], 100e6, kMillisecond, 200'000);

  tn.net = std::make_unique<sim::Network>(tn.topo, 1);
  control::InstallDstRoutes(*tn.net);
  for (NodeId s : tn.switches) {
    auto pipe = std::make_unique<dataplane::Pipeline>(dataplane::DefaultSwitchCapacity());
    auto agent = std::make_shared<ModeProtocolPpm>(tn.net.get(), tn.net->switch_at(s),
                                                   pipe.get(), ModeProtocolConfig{});
    auto collector = std::make_shared<StateCollectorPpm>(tn.net.get(), tn.net->switch_at(s));
    pipe->Install(agent);
    pipe->Install(collector);
    tn.net->switch_at(s)->SetProcessor(pipe.get());
    tn.pipelines.push_back(std::move(pipe));
    tn.agents.push_back(std::move(agent));
    tn.collectors.push_back(std::move(collector));
  }
  return tn;
}

ScalingManager MakeManager(TestNet& tn) {
  std::unordered_map<NodeId, ModeProtocolPpm*> agents;
  std::unordered_map<NodeId, StateCollectorPpm*> collectors;
  for (std::size_t i = 0; i < tn.switches.size(); ++i) {
    agents[tn.switches[i]] = tn.agent(i);
    collectors[tn.switches[i]] = tn.collector(i);
  }
  return ScalingManager(tn.net.get(), std::move(agents), std::move(collectors));
}

TEST(ScalingTest, FullRepurposeSequenceMovesStateAndReturns) {
  TestNet tn = MakeTriangle();
  ScalingManager manager = MakeManager(tn);

  // A sketch with state lives on switch 1; it must land on switch 2.
  auto src_module = std::make_shared<boosters::DstFlowCountSketchPpm>(256, 3);
  auto dst_module = std::make_shared<boosters::DstFlowCountSketchPpm>(256, 3);
  tn.pipe(1)->Install(src_module);
  tn.pipe(2)->Install(dst_module);
  for (std::uint64_t k = 0; k < 50; ++k) src_module->sketch().Update(k, k + 1);

  RepurposeReport report;
  bool done = false;
  ScalingManager::Plan plan;
  plan.victim = tn.switches[1];
  plan.target = tn.switches[2];
  plan.moves = {{src_module.get(), dst_module.get()}};
  plan.downtime = 500 * kMillisecond;
  bool reprogrammed = false;
  plan.reprogram = [&] { reprogrammed = true; };
  plan.done = [&](const RepurposeReport& r) {
    report = r;
    done = true;
  };
  manager.Repurpose(std::move(plan));
  tn.net->RunUntil(2 * kSecond);

  ASSERT_TRUE(done);
  EXPECT_TRUE(reprogrammed);
  EXPECT_GT(report.state_words_moved, 0u);
  EXPECT_GE(report.online_at - report.offline_at, 500 * kMillisecond);
  EXPECT_FALSE(tn.sw(1)->offline());
  // State arrived before the blackout.
  for (std::uint64_t k = 0; k < 50; ++k) {
    EXPECT_EQ(dst_module->sketch().Estimate(k), src_module->sketch().Estimate(k));
  }
}

TEST(ScalingTest, TrafficReroutesAroundBlackout) {
  TestNet tn = MakeTriangle();
  ScalingManager manager = MakeManager(tn);

  // Continuous h0 -> h2 traffic: default route is the direct 0-2 link; force
  // it through switch 1 so the blackout matters.
  tn.net->switch_at(tn.switches[0])
      ->SetDstRoute(tn.net->topology().node(tn.hosts[2]).address,
                    {tn.switches[1], tn.switches[2]});
  sim::UdpParams udp;
  udp.rate_bps = 1e6;
  udp.packet_bytes = 500;
  const FlowId flow = tn.net->StartUdpFlow(tn.hosts[0], tn.hosts[2], udp, 0);

  ScalingManager::Plan plan;
  plan.victim = tn.switches[1];
  plan.target = tn.switches[2];
  plan.downtime = kSecond;
  manager.Repurpose(std::move(plan));
  tn.net->RunUntil(3 * kSecond);

  // Despite a 1 s blackout of the transit switch, goodput continued via the
  // backup next hop (the direct 0-2 link); allow only the notification gap.
  const auto& stats = tn.net->flow_stats(flow);
  const double expected_bytes = 1e6 / 8.0 * 3.0;
  EXPECT_GT(static_cast<double>(stats.delivered_bytes), 0.93 * expected_bytes);
  // The dark switch carried only the pre-notification fraction: during the
  // 1 s blackout of a 3 s run it forwarded nothing, so it saw well under
  // two-thirds of the flow's packets.
  const std::uint64_t total_packets = stats.delivered_bytes / 500;
  EXPECT_LT(tn.sw(1)->forwarded_packets(), total_packets * 2 / 3 + 10);
}

TEST(ScalingTest, WithoutNotificationTrafficIsLost) {
  // Control experiment: go offline without announcing; the line topology
  // variant has no backup, so packets die at the dark switch.
  TestNet tn = MakeLineNet(3);
  sim::UdpParams udp;
  udp.rate_bps = 1e6;
  udp.packet_bytes = 500;
  const FlowId flow = tn.net->StartUdpFlow(tn.hosts[0], tn.hosts[1], udp, 0);
  tn.net->events().ScheduleAt(kSecond, [&] { tn.sw(1)->SetOffline(true); });
  tn.net->events().ScheduleAt(2 * kSecond, [&] { tn.sw(1)->SetOffline(false); });
  tn.net->RunUntil(3 * kSecond);
  const auto& stats = tn.net->flow_stats(flow);
  const double expected_bytes = 1e6 / 8.0 * 3.0;
  // Roughly a third of the traffic died in the blackout.
  EXPECT_LT(static_cast<double>(stats.delivered_bytes), 0.75 * expected_bytes);
}

TEST(ScalingTest, ReportTimesAreOrdered) {
  TestNet tn = MakeTriangle();
  ScalingManager manager = MakeManager(tn);
  RepurposeReport report;
  const SimTime grace = 30 * kMillisecond;
  ScalingManager::Plan plan;
  plan.victim = tn.switches[1];
  plan.target = tn.switches[2];
  plan.grace = grace;
  plan.downtime = 200 * kMillisecond;
  plan.done = [&](const RepurposeReport& r) { report = r; };
  manager.Repurpose(std::move(plan));
  tn.net->RunUntil(kSecond);
  EXPECT_LT(report.announced_at, report.offline_at);
  EXPECT_LT(report.offline_at, report.online_at);
  EXPECT_GE(report.offline_at - report.announced_at, grace);
}

TEST(ScalingTest, StateMigratesBackAfterRepurposeEnds) {
  // The paper: "transfer its state to other switches and potentially
  // migrate some of it back later."  Round-trip: 1 -> 2 during the
  // repurpose, state evolves on 2, then 2 -> 1 when switch 1 returns.
  TestNet tn = MakeTriangle();
  ScalingManager manager = MakeManager(tn);

  auto on_1 = std::make_shared<boosters::DstFlowCountSketchPpm>(128, 2);
  auto on_2 = std::make_shared<boosters::DstFlowCountSketchPpm>(128, 2);
  tn.pipe(1)->Install(on_1);
  tn.pipe(2)->Install(on_2);
  on_1->sketch().Update(7, 10);

  ScalingManager::Plan out;
  out.victim = tn.switches[1];
  out.target = tn.switches[2];
  out.moves = {{on_1.get(), on_2.get()}};
  out.downtime = 300 * kMillisecond;
  bool returned = false;
  out.done = [&](const RepurposeReport&) { returned = true; };
  manager.Repurpose(std::move(out));
  tn.net->RunUntil(kSecond);
  ASSERT_TRUE(returned);
  EXPECT_EQ(on_2->sketch().Estimate(7), 10u);

  // The stand-in accumulates more state while switch 1 was away.
  on_2->sketch().Update(7, 5);

  // Migrate back: a plain transfer from 2 to 1 (no blackout needed).
  on_1->Reset();
  std::vector<std::uint64_t> received;
  tn.collector(1)->ExpectTransfer(
      555, [&](std::uint64_t, const std::vector<std::uint64_t>& w) { on_1->ImportState(w); });
  SendState(tn.net.get(), tn.sw(2), tn.net->topology().node(tn.switches[1]).address, 555,
            on_2->ExportState());
  tn.net->RunUntil(2 * kSecond);
  EXPECT_EQ(on_1->sketch().Estimate(7), 15u);  // original + accrued
}

TEST(ScalingTest, TransferIdsAreUnique) {
  TestNet tn = MakeTriangle();
  ScalingManager manager = MakeManager(tn);
  const auto a = manager.NewTransferId();
  const auto b = manager.NewTransferId();
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace fastflex::runtime
