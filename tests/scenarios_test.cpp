// Scenario-helper tests: the Figure 2 topology's structure, the decoy
// route spreading, and the normal-traffic generator.
#include <gtest/gtest.h>

#include "control/routes.h"
#include "scenarios/hotnets.h"
#include "sim/switch_node.h"

namespace fastflex::scenarios {
namespace {

TEST(HotnetsTopologyTest, StructureMatchesFigure2) {
  const HotnetsTopology h = BuildHotnetsTopology();
  EXPECT_EQ(h.topo.FindByName("A"), h.a);
  EXPECT_EQ(h.topo.FindByName("R"), h.r);
  EXPECT_EQ(h.clients.size(), 6u);
  EXPECT_EQ(h.bots.size(), 8u);
  EXPECT_EQ(h.decoys.size(), 3u);
  // The two critical links and the detour terminate at R.
  EXPECT_EQ(h.topo.link(h.critical1).from, h.m1);
  EXPECT_EQ(h.topo.link(h.critical1).to, h.r);
  EXPECT_EQ(h.topo.link(h.critical2).from, h.m2);
  EXPECT_EQ(h.topo.link(h.detour).from, h.m3);
  // The detour has more capacity than a critical link (it absorbs reroutes).
  EXPECT_GT(h.topo.link(h.detour).rate_bps, h.topo.link(h.critical1).rate_bps);
  // The detour path is longer: A reaches M3 only through E.
  EXPECT_FALSE(h.topo.LinkBetween(h.a, h.m3).has_value());
  EXPECT_TRUE(h.topo.LinkBetween(h.a, h.e).has_value());
  EXPECT_TRUE(h.topo.LinkBetween(h.e, h.m3).has_value());
}

TEST(HotnetsTopologyTest, ParamsControlScale) {
  HotnetsParams params;
  params.clients_per_edge = 5;
  params.bots_per_edge = 2;
  params.decoy_count = 7;
  const HotnetsTopology h = BuildHotnetsTopology(params);
  EXPECT_EQ(h.clients.size(), 10u);
  EXPECT_EQ(h.bots.size(), 4u);
  EXPECT_EQ(h.decoys.size(), 7u);
}

TEST(HotnetsTopologyTest, VictimPathsCrossTheCriticalCut) {
  const HotnetsTopology h = BuildHotnetsTopology();
  // Every shortest client->victim path crosses M1-R or M2-R: the cut the
  // attacker targets.
  for (NodeId c : h.clients) {
    const sim::Path p = h.topo.ShortestPath(c, h.victim);
    ASSERT_FALSE(p.empty());
    bool crosses = false;
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
      if ((p[i] == h.m1 || p[i] == h.m2) && p[i + 1] == h.r) crosses = true;
    }
    EXPECT_TRUE(crosses);
  }
}

TEST(SpreadDecoyRoutesTest, DecoysMapToDistinctMiddleSwitches) {
  const HotnetsTopology h = BuildHotnetsTopology();
  sim::Network net(h.topo, 1);
  control::InstallDstRoutes(net);
  SpreadDecoyRoutes(net, h);
  const auto& topo = net.topology();
  sim::SwitchNode* a = net.switch_at(h.a);
  auto next_hop = [&](NodeId decoy) {
    sim::Packet p;
    p.kind = sim::PacketKind::kData;
    p.dst = topo.node(decoy).address;
    return a->NextHopFor(p);
  };
  EXPECT_EQ(next_hop(h.decoys[0]), h.m1);
  EXPECT_EQ(next_hop(h.decoys[1]), h.m2);
  EXPECT_EQ(next_hop(h.decoys[2]), h.e);  // the detour goes through E
}

TEST(NormalTrafficTest, DemandsDescribeStartedFlows) {
  const HotnetsTopology h = BuildHotnetsTopology();
  sim::Network net(h.topo, 1);
  control::InstallDstRoutes(net);
  const NormalTraffic traffic = StartNormalTraffic(net, h, kSecond, 3e6);
  ASSERT_EQ(traffic.flows.size(), h.clients.size());
  ASSERT_EQ(traffic.demands.size(), h.clients.size());
  for (std::size_t i = 0; i < traffic.demands.size(); ++i) {
    EXPECT_EQ(traffic.demands[i].flow, traffic.flows[i]);
    EXPECT_EQ(traffic.demands[i].dst_host, h.victim);
    EXPECT_DOUBLE_EQ(traffic.demands[i].rate_bps, 3e6);
    const auto ep = net.flow_endpoints(traffic.flows[i]);
    EXPECT_EQ(ep.src, traffic.demands[i].src_host);
    EXPECT_EQ(ep.dst, h.victim);
  }
  // The flows actually move bytes at roughly the requested demand.
  net.RunUntil(10 * kSecond);
  const double agg = net.AggregateGoodputBps(traffic.flows, 9 * kSecond);
  EXPECT_GT(agg, 0.7 * 18e6);
  EXPECT_LT(agg, 1.2 * 18e6);
}

}  // namespace
}  // namespace fastflex::scenarios
