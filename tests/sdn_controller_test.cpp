// SDN baseline controller tests: epoch cadence, telemetry-driven demand
// measurement, congestion-relieving reconfiguration.
#include <gtest/gtest.h>

#include "control/routes.h"
#include "control/sdn_controller.h"
#include "scenarios/hotnets.h"
#include "sim/switch_node.h"

namespace fastflex::control {
namespace {

using scenarios::BuildHotnetsTopology;
using scenarios::HotnetsTopology;

TEST(SdnControllerTest, ReconfiguresOncePerEpoch) {
  HotnetsTopology h = BuildHotnetsTopology();
  sim::Network net(h.topo, 1);
  InstallDstRoutes(net);
  SdnControllerConfig config;
  config.epoch = 2 * kSecond;
  SdnTeController controller(&net, config);
  controller.Start();
  net.RunUntil(9 * kSecond);
  EXPECT_EQ(controller.reconfigurations(), 4);
  controller.Stop();
  net.RunUntil(20 * kSecond);
  EXPECT_EQ(controller.reconfigurations(), 4);
}

TEST(SdnControllerTest, MeasuresActiveFlowsOnly) {
  HotnetsTopology h = BuildHotnetsTopology();
  sim::Network net(h.topo, 1);
  InstallDstRoutes(net);
  const FlowId live = net.StartTcpFlow(h.clients[0], h.victim, sim::TcpParams{}, 0);
  const FlowId dead = net.StartTcpFlow(h.clients[1], h.victim, sim::TcpParams{}, 0);
  net.RunUntil(kSecond);
  net.StopFlow(dead);
  SdnControllerConfig config;
  config.epoch = 2 * kSecond;
  SdnTeController controller(&net, config);
  controller.Start();
  net.RunUntil(5 * kSecond);
  // The stopped flow must not receive routes; the live one must. We assert
  // indirectly: route for `live` exists at its ingress switch.
  sim::Packet probe;
  probe.kind = sim::PacketKind::kData;
  probe.flow = live;
  probe.dst = net.topology().node(h.victim).address;
  EXPECT_NE(net.switch_at(h.a)->NextHopFor(probe), kInvalidNode);
  (void)dead;
}

TEST(SdnControllerTest, RebalancesAwayFromCongestedLink) {
  // Saturate M1-R with UDP noise the controller can see; its next epoch
  // must route the TCP flow off M1.
  HotnetsTopology h = BuildHotnetsTopology();
  sim::Network net(h.topo, 1);
  InstallDstRoutes(net);
  net.EnableLinkSampling(10 * kMillisecond);

  // Force the noise through M1 via its decoy route spread.
  scenarios::SpreadDecoyRoutes(net, h);
  sim::UdpParams noise;
  noise.rate_bps = 19e6;  // nearly fills the 20 Mbps critical link 1
  noise.packet_bytes = 1000;
  net.StartUdpFlow(h.bots[0], h.decoys[0], noise, 0);

  const FlowId flow = net.StartTcpFlow(h.clients[0], h.victim, sim::TcpParams{}, 0);
  SdnControllerConfig config;
  config.epoch = 3 * kSecond;
  config.te.k_paths = 4;
  SdnTeController controller(&net, config);
  controller.Start();
  net.RunUntil(10 * kSecond);

  // After reconfiguration the controller separated the noise and the TCP
  // flow: its own prediction stays below saturation, meaning the two no
  // longer share the 20 Mbps link (together they would need ~24 Mbps).
  EXPECT_LT(controller.last_max_utilization(), 1.0);
  EXPECT_GE(controller.reconfigurations(), 2);
  // And the TCP flow holds real throughput in the final seconds.
  const auto& series = net.flow_stats(flow).goodput;
  double bytes = 0;
  for (std::size_t b = 80; b < 100; ++b) bytes += series.BinTotal(b);
  EXPECT_GT(bytes * 8 / 2.0, 5e6);
}

TEST(SdnControllerTest, PredictedUtilizationReported) {
  HotnetsTopology h = BuildHotnetsTopology();
  sim::Network net(h.topo, 1);
  InstallDstRoutes(net);
  net.StartTcpFlow(h.clients[0], h.victim, sim::TcpParams{}, 0);
  SdnTeController controller(&net);
  net.RunUntil(2 * kSecond);
  controller.Reconfigure();
  EXPECT_GT(controller.last_max_utilization(), 0.0);
}

TEST(RoutesTest, CanonicalPathsFollowInstalledRoutes) {
  HotnetsTopology h = BuildHotnetsTopology();
  sim::Network net(h.topo, 1);
  InstallDstRoutes(net);
  const auto canonical = ComputeCanonicalPaths(net);
  const Address victim_addr = net.topology().node(h.victim).address;
  auto it = canonical->find({h.a, victim_addr});
  ASSERT_NE(it, canonical->end());
  // First hop is A itself; the path ends with the victim's address.
  EXPECT_EQ(it->second.front(), net.topology().node(h.a).address);
  EXPECT_EQ(it->second.back(), victim_addr);
  EXPECT_GE(it->second.size(), 4u);
}

TEST(RoutesTest, HostEdgeMapCoversEveryHost) {
  HotnetsTopology h = BuildHotnetsTopology();
  sim::Network net(h.topo, 1);
  const auto edges = BuildHostEdgeMap(net);
  std::size_t hosts = 0;
  for (const auto& n : net.topology().nodes()) {
    if (n.kind == sim::NodeKind::kHost) ++hosts;
  }
  EXPECT_EQ(edges->size(), hosts);
  EXPECT_EQ(edges->at(net.topology().node(h.victim).address), h.rv);
  EXPECT_EQ(edges->at(net.topology().node(h.clients[0]).address), h.a);
}

TEST(RoutesTest, BackupNextHopsAvoidPrimaryLink) {
  HotnetsTopology h = BuildHotnetsTopology();
  sim::Network net(h.topo, 1);
  InstallDstRoutes(net);
  // A's route to the victim has a backup (the topology is multipath).
  sim::SwitchNode* a = net.switch_at(h.a);
  const Address victim_addr = net.topology().node(h.victim).address;
  sim::Packet probe;
  probe.kind = sim::PacketKind::kData;
  probe.dst = victim_addr;
  const NodeId primary = a->NextHopFor(probe);
  a->SetAvoidNeighbor(primary, true);
  const NodeId backup = a->NextHopFor(probe);
  EXPECT_NE(backup, kInvalidNode);
  EXPECT_NE(backup, primary);
}

}  // namespace
}  // namespace fastflex::control
