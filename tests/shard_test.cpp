// ShardedEngine determinism and safety tests.
//
// The engine's contract is that the shard count is an execution detail: a
// K-shard run must produce byte-identical telemetry to the K=1 run of the
// same build (both under the engine — the legacy single-threaded path keeps
// its own historical traces via the shared-RNG stream).  These tests pin
// that contract on the three headline scenarios, the conservative-sync
// safety properties (no event ever dispatched past a shard's safe horizon,
// no channel ever delivering out of order), and the construction-time
// validation of the region partition.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "scenarios/builder.h"
#include "scenarios/faulty_fig3.h"
#include "scenarios/fig3.h"
#include "scenarios/scale_fig3.h"
#include "scenarios/syn_flood_fig.h"
#include "sim/sharded_engine.h"
#include "telemetry/export.h"
#include "telemetry/telemetry.h"
#include "test_net.h"

namespace fastflex::scenarios {
namespace {

std::string ExportNoProf(const telemetry::Recorder& rec) {
  telemetry::ExportOptions opts;
  opts.include_prof = false;  // prof carries wall clock; everything else is pinned
  return telemetry::ToJson(rec, opts);
}

Fig3Options ShortFig3(telemetry::Recorder* rec, int shards) {
  Fig3Options opt;
  opt.defense = DefenseKind::kFastFlex;
  opt.seed = 1;
  opt.duration = 20 * kSecond;
  opt.attack_at = 6 * kSecond;
  opt.shards = shards;
  opt.recorder = rec;
  return opt;
}

TEST(Shard, Fig3K1VsK4ByteIdenticalTelemetry) {
  telemetry::Recorder rec1;
  const Fig3Result r1 = RunFig3(ShortFig3(&rec1, 1));
  telemetry::Recorder rec4;
  const Fig3Result r4 = RunFig3(ShortFig3(&rec4, 4));

  EXPECT_EQ(ExportNoProf(rec1), ExportNoProf(rec4))
      << "fig3 telemetry depends on the shard count";

  // The comparison is only meaningful if the defense actually engaged.
  EXPECT_GT(r1.first_alarm, 0);
  EXPECT_EQ(r1.first_alarm, r4.first_alarm);
  EXPECT_GT(r1.events_processed, 0u);
  EXPECT_EQ(r1.events_processed, r4.events_processed);
  EXPECT_EQ(r1.mean_during_attack, r4.mean_during_attack);
  EXPECT_GT(rec1.trace().CountOf("mode_change"), 0u);
}

TEST(Shard, SynFloodK1VsK4ByteIdenticalTelemetry) {
  auto opts = [](telemetry::Recorder* rec, int shards) {
    SynFloodFigOptions opt;
    opt.defense = DefenseKind::kFastFlex;
    opt.seed = 3;
    opt.duration = 15 * kSecond;
    opt.attack_at = 5 * kSecond;
    opt.flood.syn_rate_per_bot = 400.0;
    opt.flood.syn_rate_alarm = 500.0;
    opt.flood.sessions_per_client = 8;
    opt.flood.session_interval = 1200 * kMillisecond;
    opt.shards = shards;
    opt.recorder = rec;
    return opt;
  };
  telemetry::Recorder rec1;
  const SynFloodFigResult r1 = RunSynFloodFig(opts(&rec1, 1));
  telemetry::Recorder rec4;
  const SynFloodFigResult r4 = RunSynFloodFig(opts(&rec4, 4));

  EXPECT_EQ(ExportNoProf(rec1), ExportNoProf(rec4))
      << "syn-flood telemetry depends on the shard count";
  EXPECT_GT(r1.flood_syns, 0u);
  EXPECT_GT(r1.cookies_sent, 0u);
  EXPECT_EQ(r1.established, r4.established);
  EXPECT_EQ(r1.delivered_bytes, r4.delivered_bytes);
  EXPECT_EQ(r1.events_processed, r4.events_processed);
}

TEST(Shard, FaultyFig3CrashInOneShardFloodInAnother) {
  // M2 (region 2) crashes and loses state while the orchestrator floods
  // mode changes through every region: reboot-resync, failover steering,
  // and the fault timeline must all land identically whether region 2 runs
  // on its own worker or shares one queue with everything else.
  auto opts = [](telemetry::Recorder* rec, int shards) {
    FaultyFig3Options opt;
    opt.seed = 1;
    opt.duration = 26 * kSecond;
    opt.attack_at = 6 * kSecond;
    opt.link_fault_at = 12 * kSecond;
    opt.link_repair_after = 6 * kSecond;
    opt.crash_at = 15 * kSecond;
    opt.reboot_after = 2 * kSecond;
    opt.shards = shards;
    opt.recorder = rec;
    return opt;
  };
  telemetry::Recorder rec1;
  const FaultyFig3Result r1 = RunFaultyFig3(opts(&rec1, 1));
  telemetry::Recorder rec4;
  const FaultyFig3Result r4 = RunFaultyFig3(opts(&rec4, 4));

  EXPECT_EQ(ExportNoProf(rec1), ExportNoProf(rec4))
      << "faulty-fig3 telemetry depends on the shard count";
  // The run must have exercised the cross-shard fault machinery.
  EXPECT_GT(r1.failovers, 0u);
  EXPECT_GT(r1.resyncs, 0u);
  EXPECT_EQ(r1.failover_latency, r4.failover_latency);
  EXPECT_EQ(r1.reconverge_latency, r4.reconverge_latency);
  EXPECT_EQ(r1.fault_records, r4.fault_records);
}

TEST(Shard, ScaleFabricDeterministicAcrossK) {
  auto opts = [](telemetry::Recorder* rec, int shards) {
    ScaleFig3Options opt;
    opt.seed = 7;
    opt.duration = 2 * kSecond;
    opt.regions = 8;
    opt.clients_per_region = 2;
    opt.shards = shards;
    opt.recorder = rec;
    return opt;
  };
  telemetry::Recorder rec1, rec2, rec8;
  const ScaleFig3Result r1 = RunScaleFig3(opts(&rec1, 1));
  const ScaleFig3Result r2 = RunScaleFig3(opts(&rec2, 2));
  const ScaleFig3Result r8 = RunScaleFig3(opts(&rec8, 8));

  const std::string j1 = ExportNoProf(rec1);
  EXPECT_EQ(j1, ExportNoProf(rec2));
  EXPECT_EQ(j1, ExportNoProf(rec8));
  EXPECT_GT(r1.delivered_bytes, 0u);
  EXPECT_EQ(r1.delivered_bytes, r8.delivered_bytes);
  EXPECT_EQ(r1.events_processed, r2.events_processed);
  EXPECT_EQ(r1.events_processed, r8.events_processed);
}

TEST(Shard, WorkerContextFlightDumpMergesCanonically) {
  // A FlightRecorder::RequestDump issued mid-run from a WORKER context (an
  // event pinned to a node) must not snapshot that worker's shard-local
  // ring: the engine defers it to the next coordinator barrier and cuts the
  // dump from the canonical merged ring — so the document is byte-identical
  // whether the requesting node shares one shard with everything else (K=1)
  // or runs alone (K=4).  The request fires at 12 s, mid mode-churn, so the
  // ring holds records from every region at the time of the cut.
  auto run = [](int shards, std::string* notice) {
    telemetry::Recorder rec;
    ScenarioBuilder builder;
    builder.Seed(1).Defense(DefenseKind::kFastFlex).AttackAt(6 * kSecond).Record(&rec);
    BuiltScenario s = builder.Build();
    sim::Network* net = s.net.get();
    telemetry::Recorder* r = &rec;
    net->events().ScheduleAtCtx(12 * kSecond, s.h.rv, [net, r, notice] {
      *notice = r->flight().RequestDump("worker-test", net->Now());
    });
    sim::RunOptions run;
    run.duration = 16 * kSecond;
    run.shards = shards;
    RunScenario(s, run);
    const std::string dump = rec.flight().last_dump();
    s.net->SetTelemetry(nullptr);
    return dump;
  };
  std::string notice1, notice4;
  const std::string d1 = run(1, &notice1);
  const std::string d4 = run(4, &notice4);

  // The worker-side call itself only gets the deferral notice...
  EXPECT_NE(notice1.find("\"deferred\":true"), std::string::npos);
  EXPECT_EQ(notice1, notice4);
  // ...and the real dump lands at the barrier, identical across K.
  ASSERT_FALSE(d1.empty());
  EXPECT_NE(d1.find("worker-test"), std::string::npos);
  EXPECT_EQ(d1, d4) << "worker-context flight dump depends on the shard count";
}

TEST(Shard, LookaheadAndChannelOrderPropertiesHold) {
  // Direct engine run so the violation counters are visible: every dispatch
  // must sit inside its shard's proven-safe horizon, and every channel must
  // deliver in nondecreasing (t, seq) order.  These counters are the
  // runtime teeth of the conservative-sync proof.
  ScenarioBuilder builder;
  builder.Seed(1).Defense(DefenseKind::kFastFlex).AttackAt(5 * kSecond);
  BuiltScenario s = builder.Build();

  sim::ShardedEngine::Options opt;
  opt.shards = 3;
  sim::ShardedEngine engine(*s.net, opt);
  engine.RunUntil(15 * kSecond);
  engine.Finish();

  EXPECT_EQ(engine.shard_count(), 3);
  EXPECT_EQ(engine.horizon_violations(), 0u);
  EXPECT_EQ(engine.order_violations(), 0u);
  EXPECT_GT(engine.TotalEvents(), 0u);
  // The HotNets regions are stitched by >= 2 ms links (E -> M3 is the
  // tightest region-1 -> region-2 hop; the rest are 15-20 ms).
  EXPECT_GE(engine.min_cross_lookahead(), 2 * kMillisecond);
}

TEST(Shard, SparseRegionLabelsAreRejected) {
  auto tn = fastflex::testing::MakeLineNet(4);
  // Labels {1, 5}: the span [1, 5] holds unused values, which would leave
  // the partitioner with phantom regions — construction must refuse.
  tn.net->set_node_region(tn.switches[0], 1);
  tn.net->set_node_region(tn.switches[1], 1);
  tn.net->set_node_region(tn.switches[2], 5);
  tn.net->set_node_region(tn.switches[3], 5);
  for (NodeId h : tn.hosts) tn.net->set_node_region(h, 1);
  EXPECT_THROW(sim::ShardedEngine(*tn.net, {.shards = 2}), std::runtime_error);
}

TEST(Shard, ZeroDelayCrossShardLinkIsRejected) {
  // A zero-propagation link between two regions gives conservative sync no
  // lookahead to promise — the engine must reject it at construction.
  sim::Topology topo;
  const NodeId a = topo.AddNode(sim::NodeKind::kSwitch, "a");
  const NodeId b = topo.AddNode(sim::NodeKind::kSwitch, "b");
  topo.AddDuplexLink(a, b, 100e6, 0, 200'000);
  sim::Network net(topo, 1);
  net.set_node_region(a, 1);
  net.set_node_region(b, 2);
  EXPECT_THROW(sim::ShardedEngine(net, {.shards = 2}), std::runtime_error);
}

TEST(Shard, ShardCountClampsToRegions) {
  // More shards than regions is not an error — the engine runs one shard
  // per region and ignores the excess.
  ScaleFig3Options opt;
  opt.seed = 2;
  opt.duration = 500 * kMillisecond;
  opt.regions = 2;
  opt.clients_per_region = 1;
  opt.shards = 16;
  const ScaleFig3Result r = RunScaleFig3(opt);
  EXPECT_GT(r.events_processed, 0u);
}

}  // namespace
}  // namespace fastflex::scenarios
