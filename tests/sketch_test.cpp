// Probabilistic data-structure tests: count-min sketch, bloom filter,
// HashPipe — including parameterized property sweeps over sizings that
// check the published error bounds hold.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "dataplane/bloom.h"
#include "dataplane/hashpipe.h"
#include "dataplane/sketch.h"
#include "util/rng.h"

namespace fastflex::dataplane {
namespace {

TEST(CountMinTest, ExactForFewKeys) {
  CountMinSketch cms(1024, 3);
  cms.Update(1, 5);
  cms.Update(2, 7);
  cms.Update(1, 3);
  EXPECT_EQ(cms.Estimate(1), 8u);
  EXPECT_EQ(cms.Estimate(2), 7u);
  EXPECT_EQ(cms.Estimate(3), 0u);
  EXPECT_EQ(cms.total(), 15u);
}

TEST(CountMinTest, NeverUnderestimates) {
  CountMinSketch cms(64, 2);  // deliberately tight
  Rng rng(1);
  std::map<std::uint64_t, std::uint64_t> truth;
  for (int i = 0; i < 5000; ++i) {
    const auto key = static_cast<std::uint64_t>(rng.UniformInt(0, 499));
    cms.Update(key);
    ++truth[key];
  }
  for (const auto& [key, count] : truth) {
    EXPECT_GE(cms.Estimate(key), count);
  }
}

TEST(CountMinTest, DecayHalvesCounters) {
  CountMinSketch cms(256, 3);
  cms.Update(42, 100);
  cms.Decay();
  EXPECT_EQ(cms.Estimate(42), 50u);
  EXPECT_EQ(cms.total(), 50u);
}

TEST(CountMinTest, ResetClears) {
  CountMinSketch cms(256, 3);
  cms.Update(42, 100);
  cms.Reset();
  EXPECT_EQ(cms.Estimate(42), 0u);
  EXPECT_EQ(cms.total(), 0u);
}

TEST(CountMinTest, ExportImportRoundTrips) {
  CountMinSketch a(128, 3);
  for (std::uint64_t k = 0; k < 50; ++k) a.Update(k, k + 1);
  CountMinSketch b(128, 3);
  b.ImportWords(a.ExportWords());
  for (std::uint64_t k = 0; k < 50; ++k) EXPECT_EQ(b.Estimate(k), a.Estimate(k));
}

/// Property sweep: the (eps, delta) bound — estimate <= truth + eps*N with
/// probability >= 1-delta, where eps = e/width.
class CountMinBoundTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CountMinBoundTest, ErrorBoundHolds) {
  const auto [width, depth] = GetParam();
  CountMinSketch cms(static_cast<std::size_t>(width), static_cast<std::size_t>(depth),
                     0xabc);
  Rng rng(static_cast<std::uint64_t>(width * 31 + depth));
  std::map<std::uint64_t, std::uint64_t> truth;
  const int updates = 20'000;
  for (int i = 0; i < updates; ++i) {
    // Zipf-ish skew: low keys are heavy.
    const auto key = static_cast<std::uint64_t>(rng.Exponential(200.0));
    cms.Update(key);
    ++truth[key];
  }
  const double eps = std::exp(1.0) / width;
  int violations = 0;
  for (const auto& [key, count] : truth) {
    if (cms.Estimate(key) > count + static_cast<std::uint64_t>(eps * updates)) ++violations;
  }
  const double delta = std::exp(-static_cast<double>(depth));
  EXPECT_LE(static_cast<double>(violations),
            std::max(1.0, delta * static_cast<double>(truth.size())));
}

INSTANTIATE_TEST_SUITE_P(Sizings, CountMinBoundTest,
                         ::testing::Combine(::testing::Values(64, 256, 1024),
                                            ::testing::Values(2, 3, 4)));

TEST(BloomTest, NoFalseNegatives) {
  BloomFilter bloom(4096, 3);
  for (std::uint64_t k = 0; k < 500; ++k) bloom.Insert(k);
  for (std::uint64_t k = 0; k < 500; ++k) EXPECT_TRUE(bloom.MayContain(k));
}

TEST(BloomTest, ResetClears) {
  BloomFilter bloom(1024, 3);
  bloom.Insert(7);
  bloom.Reset();
  EXPECT_FALSE(bloom.MayContain(7));
  EXPECT_EQ(bloom.insertions(), 0u);
  EXPECT_DOUBLE_EQ(bloom.FillRatio(), 0.0);
}

TEST(BloomTest, ExportImportRoundTrips) {
  BloomFilter a(2048, 3);
  for (std::uint64_t k = 100; k < 200; ++k) a.Insert(k);
  BloomFilter b(2048, 3);
  b.ImportWords(a.ExportWords());
  for (std::uint64_t k = 100; k < 200; ++k) EXPECT_TRUE(b.MayContain(k));
}

/// Property sweep: measured false-positive rate tracks the analytic
/// (1 - e^{-kn/m})^k within a small factor.
class BloomFprTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BloomFprTest, FalsePositiveRateNearTheory) {
  const auto [bits, hashes, inserted] = GetParam();
  BloomFilter bloom(static_cast<std::size_t>(bits), static_cast<std::size_t>(hashes));
  for (int k = 0; k < inserted; ++k) bloom.Insert(static_cast<std::uint64_t>(k));
  int fp = 0;
  const int probes = 20'000;
  for (int k = 0; k < probes; ++k) {
    if (bloom.MayContain(static_cast<std::uint64_t>(k) + 1'000'000)) ++fp;
  }
  const double measured = static_cast<double>(fp) / probes;
  const double kk = static_cast<double>(hashes);
  const double theory =
      std::pow(1.0 - std::exp(-kk * inserted / static_cast<double>(bloom.bit_count())), kk);
  EXPECT_LE(measured, theory * 2.0 + 0.005);
  if (theory > 0.01) {
    EXPECT_GE(measured, theory * 0.3);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizings, BloomFprTest,
                         ::testing::Combine(::testing::Values(1024, 4096, 16384),
                                            ::testing::Values(2, 3, 5),
                                            ::testing::Values(100, 500)));

TEST(HashPipeTest, TracksSingleKeyExactly) {
  HashPipe hp(4, 64);
  for (int i = 0; i < 100; ++i) hp.Update(7, 1);
  EXPECT_EQ(hp.Estimate(7), 100u);
}

TEST(HashPipeTest, HeavyHittersDominateTopK) {
  HashPipe hp(4, 128);
  Rng rng(2);
  // Two heavy keys and a sea of mice.
  for (int i = 0; i < 20'000; ++i) {
    const double u = rng.NextDouble();
    std::uint64_t key;
    if (u < 0.30) {
      key = 1'000'001;
    } else if (u < 0.55) {
      key = 1'000'002;
    } else {
      key = static_cast<std::uint64_t>(rng.UniformInt(1, 5000));
    }
    hp.Update(key, 1);
  }
  const auto top = hp.TopK(2);
  ASSERT_EQ(top.size(), 2u);
  std::set<std::uint64_t> keys{top[0].key, top[1].key};
  EXPECT_TRUE(keys.contains(1'000'001));
  EXPECT_TRUE(keys.contains(1'000'002));
  // Counts underestimate at most (never overestimate).
  EXPECT_LE(hp.Estimate(1'000'001), 20'000u * 30 / 100 + 100);
}

TEST(HashPipeTest, NeverOverestimates) {
  HashPipe hp(2, 16);  // heavy collision pressure
  Rng rng(3);
  std::map<std::uint64_t, std::uint64_t> truth;
  for (int i = 0; i < 10'000; ++i) {
    const auto key = static_cast<std::uint64_t>(rng.UniformInt(0, 99));
    hp.Update(key);
    ++truth[key];
  }
  for (const auto& [key, count] : truth) EXPECT_LE(hp.Estimate(key), count);
}

TEST(HashPipeTest, DecayAndReset) {
  HashPipe hp(4, 64);
  hp.Update(5, 100);
  hp.Decay();
  EXPECT_EQ(hp.Estimate(5), 50u);
  hp.Reset();
  EXPECT_EQ(hp.Estimate(5), 0u);
  EXPECT_TRUE(hp.TopK(10).empty());
}

TEST(HashPipeTest, ExportImportRoundTrips) {
  HashPipe a(4, 64);
  for (std::uint64_t k = 1; k <= 20; ++k) a.Update(k, k * 10);
  HashPipe b(4, 64);
  b.ImportWords(a.ExportWords());
  for (std::uint64_t k = 1; k <= 20; ++k) EXPECT_EQ(b.Estimate(k), a.Estimate(k));
}

/// Property sweep: recall of the top heavy hitter across table shapes.
class HashPipeRecallTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HashPipeRecallTest, FindsDominantKey) {
  const auto [stages, slots] = GetParam();
  HashPipe hp(static_cast<std::size_t>(stages), static_cast<std::size_t>(slots));
  Rng rng(static_cast<std::uint64_t>(stages * 100 + slots));
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t key = rng.NextDouble() < 0.4
                                  ? 777ULL
                                  : static_cast<std::uint64_t>(rng.UniformInt(1, 2000));
    hp.Update(key);
  }
  const auto top = hp.TopK(1);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].key, 777u);
}

INSTANTIATE_TEST_SUITE_P(Shapes, HashPipeRecallTest,
                         ::testing::Combine(::testing::Values(2, 4, 6),
                                            ::testing::Values(64, 256, 1024)));

}  // namespace
}  // namespace fastflex::dataplane
