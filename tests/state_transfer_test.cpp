// In-band state transfer tests (Section 3.4): reassembly, FEC protection
// under injected loss, late handler registration, replica freshness.
#include <gtest/gtest.h>

#include "boosters/shared_ppms.h"
#include "dataplane/sketch.h"
#include "runtime/scaling.h"
#include "test_net.h"

namespace fastflex::runtime {
namespace {

using fastflex::testing::MakeLineNet;
using fastflex::testing::TestNet;

std::vector<std::uint64_t> MakeWords(std::size_t n) {
  std::vector<std::uint64_t> words(n);
  for (std::size_t i = 0; i < n; ++i) words[i] = i * 1'000'003 + 7;
  return words;
}

TEST(StateTransferTest, LosslessTransferCompletes) {
  TestNet tn = MakeLineNet(3);
  const auto words = MakeWords(100);
  std::vector<std::uint64_t> received;
  tn.collector(2)->ExpectTransfer(
      1, [&](std::uint64_t, const std::vector<std::uint64_t>& w) { received = w; });
  const Address dst = tn.net->topology().node(tn.switches[2]).address;
  const SendStateResult sent = SendState(tn.net.get(), tn.sw(0), dst, 1, words);
  tn.net->RunUntil(kSecond);
  EXPECT_EQ(received, words);
  // 100 words + ceil(100/8) parity packets, paced over ~2.3 ms.
  EXPECT_EQ(sent.packets, 100u + 13u);
  EXPECT_GT(sent.duration, 0);
}

TEST(StateTransferTest, FecRecoversInjectedLoss) {
  TestNet tn = MakeLineNet(3);
  const auto words = MakeWords(400);
  StateTransferOptions options;
  options.fec_k = 4;           // strong protection
  options.inject_loss = 0.03;  // 3% loss
  std::vector<std::uint64_t> received;
  tn.collector(2)->ExpectTransfer(
      7, [&](std::uint64_t, const std::vector<std::uint64_t>& w) { received = w; });
  const Address dst = tn.net->topology().node(tn.switches[2]).address;
  SendState(tn.net.get(), tn.sw(0), dst, 7, words, options);
  tn.net->RunUntil(kSecond);
  EXPECT_EQ(received, words);
  EXPECT_GT(tn.collector(2)->RecoveredWords(7), 0u);
}

TEST(StateTransferTest, WithoutFecLossIsFatal) {
  TestNet tn = MakeLineNet(3);
  const auto words = MakeWords(400);
  StateTransferOptions options;
  options.send_parity = false;
  options.inject_loss = 0.03;
  const Address dst = tn.net->topology().node(tn.switches[2]).address;
  SendState(tn.net.get(), tn.sw(0), dst, 8, words, options);
  tn.net->RunUntil(kSecond);
  EXPECT_FALSE(tn.collector(2)->Completed(8));
  EXPECT_GT(tn.collector(2)->MissingWords(8), 0u);
}

TEST(StateTransferTest, HandlerRegisteredAfterCompletionStillFires) {
  TestNet tn = MakeLineNet(2);
  const auto words = MakeWords(20);
  const Address dst = tn.net->topology().node(tn.switches[1]).address;
  SendState(tn.net.get(), tn.sw(0), dst, 3, words);
  tn.net->RunUntil(kSecond);
  ASSERT_TRUE(tn.collector(1)->Completed(3));
  std::vector<std::uint64_t> received;
  tn.collector(1)->ExpectTransfer(
      3, [&](std::uint64_t, const std::vector<std::uint64_t>& w) { received = w; });
  EXPECT_EQ(received, words);
}

TEST(StateTransferTest, TransitSwitchesDoNotConsume) {
  TestNet tn = MakeLineNet(3);
  const auto words = MakeWords(10);
  const Address dst = tn.net->topology().node(tn.switches[2]).address;
  SendState(tn.net.get(), tn.sw(0), dst, 5, words);
  tn.net->RunUntil(kSecond);
  // The middle collector saw the packets transit but did not absorb them.
  EXPECT_FALSE(tn.collector(1)->Completed(5));
  EXPECT_TRUE(tn.collector(2)->Completed(5));
}

TEST(StateTransferTest, ConcurrentTransfersKeptApart) {
  TestNet tn = MakeLineNet(3);
  const auto words_a = MakeWords(30);
  auto words_b = MakeWords(40);
  for (auto& w : words_b) w ^= 0xffff;
  std::vector<std::uint64_t> got_a, got_b;
  tn.collector(2)->ExpectTransfer(
      100, [&](std::uint64_t, const std::vector<std::uint64_t>& w) { got_a = w; });
  tn.collector(2)->ExpectTransfer(
      200, [&](std::uint64_t, const std::vector<std::uint64_t>& w) { got_b = w; });
  const Address dst = tn.net->topology().node(tn.switches[2]).address;
  SendState(tn.net.get(), tn.sw(0), dst, 100, words_a);
  SendState(tn.net.get(), tn.sw(1), dst, 200, words_b);
  tn.net->RunUntil(kSecond);
  EXPECT_EQ(got_a, words_a);
  EXPECT_EQ(got_b, words_b);
}

TEST(StateTransferTest, SketchStateSurvivesTransferIntact) {
  TestNet tn = MakeLineNet(2);
  dataplane::CountMinSketch source(256, 3);
  for (std::uint64_t k = 0; k < 100; ++k) source.Update(k, k + 1);
  dataplane::CountMinSketch target(256, 3);
  tn.collector(1)->ExpectTransfer(
      9, [&](std::uint64_t, const std::vector<std::uint64_t>& w) { target.ImportWords(w); });
  const Address dst = tn.net->topology().node(tn.switches[1]).address;
  SendState(tn.net.get(), tn.sw(0), dst, 9, source.ExportWords());
  tn.net->RunUntil(kSecond);
  for (std::uint64_t k = 0; k < 100; ++k) EXPECT_EQ(target.Estimate(k), source.Estimate(k));
}

TEST(ReplicatorTest, PeriodicReplicationKeepsBuddyFresh) {
  TestNet tn = MakeLineNet(3);
  // Replicate a live sketch from switch 0 to switch 2 every 100 ms.
  auto sketch_module = std::make_shared<boosters::DstFlowCountSketchPpm>(256, 3);
  tn.pipe(0)->Install(sketch_module);
  const Address buddy = tn.net->topology().node(tn.switches[2]).address;
  StateReplicator replicator(tn.net.get(), tn.sw(0), sketch_module.get(), buddy,
                             /*replica_id=*/0x1000, 100 * kMillisecond);
  replicator.Start();
  sketch_module->sketch().Update(42, 5);
  tn.net->RunUntil(250 * kMillisecond);
  sketch_module->sketch().Update(42, 5);
  tn.net->RunUntil(550 * kMillisecond);

  // The newest completed round carries the updated value.
  const auto last = replicator.last_round_id();
  ASSERT_TRUE(tn.collector(2)->Completed(last));
  dataplane::CountMinSketch replica(256, 3);
  replica.ImportWords(tn.collector(2)->CompletedWords(last));
  EXPECT_EQ(replica.Estimate(42), 10u);
  // Replica age is bounded by the period.
  EXPECT_GE(tn.collector(2)->LastUpdate(last), 400 * kMillisecond);
}

TEST(ReplicatorTest, StopHaltsReplication) {
  TestNet tn = MakeLineNet(2);
  auto module = std::make_shared<boosters::DstFlowCountSketchPpm>(64, 2);
  tn.pipe(0)->Install(module);
  const Address buddy = tn.net->topology().node(tn.switches[1]).address;
  StateReplicator replicator(tn.net.get(), tn.sw(0), module.get(), buddy, 0x2000,
                             100 * kMillisecond);
  replicator.Start();
  tn.net->RunUntil(250 * kMillisecond);
  replicator.Stop();
  const auto last = replicator.last_round_id();
  tn.net->RunUntil(kSecond);
  EXPECT_EQ(replicator.last_round_id(), last);
}

}  // namespace
}  // namespace fastflex::runtime
