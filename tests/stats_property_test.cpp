// Property tests for the measurement primitives in util/stats.h, which
// every telemetry artifact and regenerated figure is built on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"

namespace fastflex {
namespace {

// ---- Summary: Welford must agree with the naive two-pass formulas ----

TEST(SummaryProperty, WelfordMatchesTwoPass) {
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.Next() % 1000;
    // Mix scales so catastrophic cancellation would show up in a naive
    // sum-of-squares implementation.
    const double offset = rng.Uniform(-1e6, 1e6);
    const double spread = rng.Uniform(1e-3, 1e3);

    std::vector<double> xs(n);
    Summary s;
    for (auto& x : xs) {
      x = offset + rng.Uniform(-spread, spread);
      s.Add(x);
    }

    double mean = 0.0;
    for (double x : xs) mean += x;
    mean /= static_cast<double>(n);
    double m2 = 0.0;
    for (double x : xs) m2 += (x - mean) * (x - mean);
    const double variance = n > 1 ? m2 / static_cast<double>(n - 1) : 0.0;

    ASSERT_EQ(s.count(), n);
    EXPECT_NEAR(s.mean(), mean, 1e-9 * std::max(1.0, std::abs(mean)));
    EXPECT_NEAR(s.variance(), variance, 1e-6 * std::max(1.0, variance));
    EXPECT_DOUBLE_EQ(s.min(), *std::min_element(xs.begin(), xs.end()));
    EXPECT_DOUBLE_EQ(s.max(), *std::max_element(xs.begin(), xs.end()));
  }
}

TEST(SummaryProperty, SingleSampleHasZeroVariance) {
  Summary s;
  s.Add(7.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 7.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

// ---- Ewma: ValueAt must decay monotonically toward zero ----

TEST(EwmaProperty, ValueAtDecaysMonotonically) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    Ewma e(rng.Uniform(0.01, 1.0));
    const SimTime t0 = static_cast<SimTime>(rng.Next() % kSecond);
    e.Update(rng.Uniform(0.5, 100.0), t0);

    double prev = e.ValueAt(t0);
    EXPECT_DOUBLE_EQ(prev, e.value());
    for (int k = 1; k <= 50; ++k) {
      const SimTime t = t0 + k * 20 * kMillisecond;
      const double v = e.ValueAt(t);
      EXPECT_LE(v, prev) << "decay must be monotone at step " << k;
      EXPECT_GE(v, 0.0);
      prev = v;
    }
    // After many time constants the value is effectively gone.
    EXPECT_LT(e.ValueAt(t0 + 100 * kSecond), 1e-6);
  }
}

TEST(EwmaProperty, UpdateMovesTowardSample) {
  Ewma e(0.1);
  e.Update(10.0, 0);
  const double before = e.ValueAt(50 * kMillisecond);
  e.Update(20.0, 50 * kMillisecond);
  // New value must land strictly between the decayed old value and the
  // sample (convex combination).
  EXPECT_GT(e.value(), before);
  EXPECT_LT(e.value(), 20.0);
}

// ---- Histogram: Percentile monotone in p, clamped to [lo, hi] ----

TEST(HistogramProperty, PercentileMonotoneAndClamped) {
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    const double lo = rng.Uniform(-100.0, 0.0);
    const double hi = lo + rng.Uniform(1.0, 200.0);
    Histogram h(lo, hi, 1 + rng.Next() % 64);
    const std::size_t n = 1 + rng.Next() % 5000;
    for (std::size_t i = 0; i < n; ++i) {
      // Deliberately overshoot the range on both sides: out-of-range
      // samples must clamp to the edge buckets, not be dropped.
      h.Add(rng.Uniform(lo - 10.0, hi + 10.0));
    }
    ASSERT_EQ(h.count(), n);

    double prev = h.Percentile(0);
    for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
      const double v = h.Percentile(p);
      EXPECT_GE(v, prev) << "percentile must be monotone in p at p=" << p;
      EXPECT_GE(v, lo);
      EXPECT_LE(v, hi);
      prev = v;
    }
  }
}

TEST(HistogramProperty, BucketCountsSumToCount) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 250; ++i) h.Add(static_cast<double>(i % 14) - 2.0);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < h.num_buckets(); ++i) total += h.bucket_count(i);
  EXPECT_EQ(total, h.count());
  EXPECT_EQ(h.bucket_count(h.num_buckets()), 0u);  // out-of-range index
}

// ---- TimeSeries: zero-filled bins, sum-preserving ----

TEST(TimeSeriesProperty, ZeroFilledAndSumPreserving) {
  Rng rng(23);
  for (int trial = 0; trial < 10; ++trial) {
    const SimTime width = static_cast<SimTime>(1 + rng.Next() % kSecond);
    TimeSeries ts(width);
    double total = 0.0;
    SimTime max_t = 0;
    const std::size_t n = 1 + rng.Next() % 2000;
    for (std::size_t i = 0; i < n; ++i) {
      const SimTime t = static_cast<SimTime>(rng.Next() % (100 * kSecond));
      const double amount = rng.Uniform(0.0, 10.0);
      ts.Add(t, amount);
      total += amount;
      max_t = std::max(max_t, t);
    }

    // Bins cover everything up to the last touched time, zero-filled.
    EXPECT_EQ(ts.NumBins(), static_cast<std::size_t>(max_t / width) + 1);
    double binned = 0.0;
    for (std::size_t i = 0; i < ts.NumBins(); ++i) {
      binned += ts.BinTotal(i);
      EXPECT_EQ(ts.BinStart(i), static_cast<SimTime>(i) * width);
    }
    EXPECT_NEAR(binned, total, 1e-9 * std::max(1.0, total));

    // Untouched bins read as zero and Rate converts per-second.
    EXPECT_DOUBLE_EQ(ts.BinTotal(ts.NumBins() + 5), 0.0);
  }
}

TEST(TimeSeriesProperty, RateIsPerSecond) {
  TimeSeries ts(500 * kMillisecond);
  ts.Add(0, 10.0);  // 10 units in a half-second bin -> 20 units/s
  EXPECT_DOUBLE_EQ(ts.Rate(0), 20.0);
}

}  // namespace
}  // namespace fastflex
