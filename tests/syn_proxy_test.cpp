// Behavioral suite for the SYN-flood split proxy: handshake transparency,
// zero-state spoofed SYNs, cookie forgery/replay rejection, filter
// teardown, and drain-through-deactivation — driven end to end through the
// hotnets topology with the orchestrator's syn_defense deployment.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "boosters/syn_proxy.h"
#include "control/orchestrator.h"
#include "scenarios/hotnets.h"
#include "sim/handshake.h"

namespace fastflex::boosters {
namespace {

using control::FastFlexOrchestrator;
using control::OrchestratorConfig;
using scenarios::BuildHotnetsTopology;
using scenarios::HotnetsTopology;
using scenarios::SpreadDecoyRoutes;

// Hotnets topology with a TcpListener victim and the syn_defense booster
// deployed everywhere; no background traffic, so every counter in these
// tests is attributable to the packets the test itself injects.
struct SynRig {
  HotnetsTopology h = BuildHotnetsTopology();
  std::unique_ptr<sim::Network> net;
  std::unique_ptr<FastFlexOrchestrator> orch;
  sim::TcpListener* listener = nullptr;
  Address victim_addr = 0;

  explicit SynRig(SynProxyConfig proxy_cfg = {},
                  std::uint64_t download_bytes = 50'000) {
    net = std::make_unique<sim::Network>(h.topo, 1);
    net->EnableLinkSampling(10 * kMillisecond);
    victim_addr = net->topology().node(h.victim).address;

    sim::TcpListenerConfig lc;
    lc.download_bytes = download_bytes;
    lc.backlog = 64;
    auto l = std::make_unique<sim::TcpListener>(net.get(), net->host_at(h.victim), lc);
    listener = l.get();
    net->host_at(h.victim)->AttachListener(std::move(l));

    std::vector<scheduler::Demand> demands;
    for (NodeId c : h.clients) {
      demands.push_back(scheduler::Demand{c, h.victim, 2e6, kInvalidFlow});
    }
    OrchestratorConfig cfg;
    cfg.boosters.emplace_back("syn_defense");
    cfg.protected_dsts = {victim_addr};
    cfg.syn_proxy = proxy_cfg;
    orch = std::make_unique<FastFlexOrchestrator>(net.get(), cfg);
    orch->Deploy(demands, [this](sim::Network& n) { SpreadDecoyRoutes(n, h); });
  }

  // One alarm gossips network-wide within a few protocol rounds.
  void SetMode(bool active) {
    orch->agent(h.a)->RaiseAlarm(dataplane::attack::kSynFlood,
                                 dataplane::mode::kSynDefense, active);
    net->RunUntil(net->Now() + 100 * kMillisecond);
    EXPECT_DOUBLE_EQ(orch->FractionModeActive(dataplane::mode::kSynDefense),
                     active ? 1.0 : 0.0);
  }

  template <typename Fn>
  void ForEachProxy(Fn&& fn) const {
    for (const auto& n : net->topology().nodes()) {
      if (n.kind != sim::NodeKind::kSwitch) continue;
      if (SynProxyPpm* p = orch->syn_proxy(n.id); p != nullptr) fn(*p);
    }
  }
  std::uint64_t SumCookiesSent() const {
    std::uint64_t v = 0;
    ForEachProxy([&](const SynProxyPpm& p) { v += p.cookies_sent(); });
    return v;
  }
  std::uint64_t SumValidated() const {
    std::uint64_t v = 0;
    ForEachProxy([&](const SynProxyPpm& p) { v += p.handshakes_validated(); });
    return v;
  }
  std::uint64_t SumInvalidCookies() const {
    std::uint64_t v = 0;
    ForEachProxy([&](const SynProxyPpm& p) { v += p.invalid_cookies(); });
    return v;
  }
  std::uint64_t SumFilterInsertions() const {
    std::uint64_t v = 0;
    ForEachProxy([&](const SynProxyPpm& p) { v += p.filter().insertions(); });
    return v;
  }
  std::size_t SumFilterOccupied() const {
    std::size_t v = 0;
    ForEachProxy([&](const SynProxyPpm& p) { v += p.filter().occupied_slots(); });
    return v;
  }
  std::uint64_t SumIdleEvictions() const {
    std::uint64_t v = 0;
    ForEachProxy([&](const SynProxyPpm& p) { v += p.idle_evictions(); });
    return v;
  }
  std::uint64_t SumSeqTranslated() const {
    std::uint64_t v = 0;
    for (const auto& n : net->topology().nodes()) {
      if (n.kind != sim::NodeKind::kSwitch) continue;
      if (auto* x = orch->seq_translate(n.id); x != nullptr) v += x->seq_translated();
    }
    return v;
  }

  sim::HandshakeClient* Client(NodeId node, FlowId flow) const {
    return dynamic_cast<sim::HandshakeClient*>(net->host_at(node)->endpoint(flow));
  }

  // The SYN a HandshakeClient for `flow` sends (for IsnFor cross-checks).
  sim::Packet SynOf(NodeId client, FlowId flow) const {
    sim::Packet syn;
    syn.kind = sim::PacketKind::kSyn;
    syn.flow = flow;
    syn.src = net->topology().node(client).address;
    syn.dst = victim_addr;
    syn.src_port = static_cast<std::uint16_t>(10'000 + (flow % 50'000));
    syn.dst_port = 80;
    return syn;
  }
};

TEST(SynProxyTest, DirectHandshakeWhenModeOff) {
  SynRig rig;
  const FlowId f = rig.net->StartSynSession(rig.h.clients[0], rig.h.victim,
                                            sim::HandshakeParams{}, 200 * kMillisecond);
  rig.net->RunUntil(5 * kSecond);
  sim::HandshakeClient* c = rig.Client(rig.h.clients[0], f);
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->established());
  EXPECT_TRUE(c->closed());
  // Mode never rose: the proxy stayed gated off, so the client negotiated
  // with the server directly and learned its true ISN.
  EXPECT_EQ(c->peer_isn(), rig.listener->IsnFor(rig.SynOf(rig.h.clients[0], f)));
  EXPECT_EQ(rig.SumCookiesSent(), 0u);
  EXPECT_EQ(rig.SumFilterInsertions(), 0u);
  EXPECT_EQ(rig.listener->accepted(), 1u);
}

TEST(SynProxyTest, ProxiedHandshakeIsTransparentAndTranslated) {
  SynRig rig;
  rig.SetMode(true);
  const FlowId f = rig.net->StartSynSession(rig.h.clients[0], rig.h.victim,
                                            sim::HandshakeParams{},
                                            rig.net->Now() + 100 * kMillisecond);
  rig.net->RunUntil(rig.net->Now() + 8 * kSecond);
  sim::HandshakeClient* c = rig.Client(rig.h.clients[0], f);
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->established());
  // The ISN the client learned is the proxy's cookie, not the server's own
  // — and the download still completes, so translation at the server's
  // edge held up end to end.
  EXPECT_NE(c->peer_isn(), rig.listener->IsnFor(rig.SynOf(rig.h.clients[0], f)));
  EXPECT_NE(c->peer_isn(), 0u);
  EXPECT_TRUE(c->closed());
  EXPECT_GE(c->delivered_segments() * 1000, 50'000u);
  EXPECT_GE(rig.SumCookiesSent(), 1u);
  EXPECT_EQ(rig.SumValidated(), 1u);
  EXPECT_GE(rig.SumFilterInsertions(), 1u);
  EXPECT_GT(rig.SumSeqTranslated(), 0u);
  EXPECT_EQ(rig.listener->accepted(), 1u);
}

TEST(SynProxyTest, SpoofedSynsCreateNoState) {
  SynRig rig;
  rig.SetMode(true);
  sim::Host* bot = rig.net->host_at(rig.h.bots[0]);
  for (int i = 0; i < 200; ++i) {
    sim::Packet syn;
    syn.kind = sim::PacketKind::kSyn;
    syn.flow = kInvalidFlow;
    syn.src = 0xdead0000u + static_cast<Address>(i);  // nobody's address
    syn.dst = rig.victim_addr;
    syn.src_port = static_cast<std::uint16_t>(2000 + i);
    syn.dst_port = 80;
    syn.size_bytes = 40;
    syn.seq = 1000u + static_cast<std::uint64_t>(i);
    bot->SendPacket(std::move(syn));
  }
  rig.net->RunUntil(rig.net->Now() + 2 * kSecond);
  // Every spoofed SYN cost the proxy one stateless cookie and nothing else:
  // no filter entries anywhere, and the server never saw a single SYN.
  EXPECT_EQ(rig.SumCookiesSent(), 200u);
  EXPECT_EQ(rig.SumFilterInsertions(), 0u);
  EXPECT_EQ(rig.SumFilterOccupied(), 0u);
  EXPECT_EQ(rig.listener->syns_seen(), 0u);
  EXPECT_EQ(rig.listener->half_open(), 0u);
}

TEST(SynProxyTest, ForgedCookieRejectedMintedCookieAccepted) {
  SynRig rig;
  rig.SetMode(true);
  sim::Host* bot = rig.net->host_at(rig.h.bots[0]);
  const Address bot_addr = bot->address();
  const SynProxyConfig cfg;  // rig uses defaults

  auto make_ack = [&](std::uint16_t sport, std::uint64_t seq, std::uint64_t cookie) {
    sim::Packet ack;
    ack.kind = sim::PacketKind::kAck;
    ack.flow = kInvalidFlow;
    ack.src = bot_addr;
    ack.dst = rig.victim_addr;
    ack.src_port = sport;
    ack.dst_port = 80;
    ack.size_bytes = 40;
    ack.seq = seq;
    ack.ack = cookie;
    return ack;
  };

  // A guessed cookie fails validation and is policed at the first
  // mode-active switch.
  bot->SendPacket(make_ack(5555, 777, 0xbad1dea));
  rig.net->RunUntil(rig.net->Now() + kSecond);
  EXPECT_EQ(rig.SumInvalidCookies(), 1u);
  EXPECT_EQ(rig.SumValidated(), 0u);
  EXPECT_EQ(rig.SumFilterInsertions(), 0u);

  // An attacker who actually holds the secret can mint the current-bucket
  // cookie — the proxy accepts it, which is exactly the trust boundary:
  // the cookie proves source ownership, not client honesty.
  const auto bucket = static_cast<std::uint64_t>(rig.net->Now() / cfg.cookie_rotate);
  const std::uint64_t good =
      SynCookie(cfg.cookie_secret, bot_addr, rig.victim_addr, 5556, 80, 778, bucket);
  bot->SendPacket(make_ack(5556, 778, good));
  rig.net->RunUntil(rig.net->Now() + kSecond);
  EXPECT_EQ(rig.SumValidated(), 1u);
  EXPECT_GE(rig.SumFilterInsertions(), 1u);
}

TEST(SynProxyTest, ReplayedCookieDiesWithBucketRotation) {
  SynRig rig;
  rig.SetMode(true);
  sim::Host* bot = rig.net->host_at(rig.h.bots[0]);
  const SynProxyConfig cfg;
  // Let two full rotation periods pass (rotate = 4s, so bucket >= 2), then
  // present a cookie minted for bucket 0: valid then, stale now.
  rig.net->RunUntil(10 * kSecond);
  const std::uint64_t stale =
      SynCookie(cfg.cookie_secret, bot->address(), rig.victim_addr, 6000, 80, 999, 0);
  sim::Packet ack;
  ack.kind = sim::PacketKind::kAck;
  ack.flow = kInvalidFlow;
  ack.src = bot->address();
  ack.dst = rig.victim_addr;
  ack.src_port = 6000;
  ack.dst_port = 80;
  ack.size_bytes = 40;
  ack.seq = 999;
  ack.ack = stale;
  bot->SendPacket(std::move(ack));
  rig.net->RunUntil(rig.net->Now() + kSecond);
  EXPECT_EQ(rig.SumInvalidCookies(), 1u);
  EXPECT_EQ(rig.SumValidated(), 0u);
  EXPECT_EQ(rig.SumFilterInsertions(), 0u);
}

TEST(SynProxyTest, FinTeardownEvictsFilterState) {
  SynRig rig;
  rig.SetMode(true);
  const FlowId f = rig.net->StartSynSession(rig.h.clients[0], rig.h.victim,
                                            sim::HandshakeParams{},
                                            rig.net->Now() + 100 * kMillisecond);
  rig.net->RunUntil(rig.net->Now() + 8 * kSecond);
  sim::HandshakeClient* c = rig.Client(rig.h.clients[0], f);
  ASSERT_NE(c, nullptr);
  ASSERT_TRUE(c->closed());
  // The server's FIN walked the reverse path and deleted the connection
  // from every proxy's filter on the way — no state outlives the session.
  EXPECT_GE(rig.SumFilterInsertions(), 1u);
  EXPECT_EQ(rig.SumFilterOccupied(), 0u);
}

TEST(SynProxyTest, IdleFlowsAreSweptFromTheFilter) {
  SynProxyConfig proxy_cfg;
  proxy_cfg.idle_timeout = 2 * kSecond;  // keep the test fast
  SynRig rig(proxy_cfg);
  rig.SetMode(true);
  // Mint a valid cookie so a "validated" connection enters the filter, then
  // never speak again: a crashed client leaks state only until the sweep.
  sim::Host* bot = rig.net->host_at(rig.h.bots[0]);
  const std::uint64_t cookie =
      SynCookie(proxy_cfg.cookie_secret, bot->address(), rig.victim_addr, 7000, 80, 555,
                static_cast<std::uint64_t>(rig.net->Now() / proxy_cfg.cookie_rotate));
  sim::Packet ack;
  ack.kind = sim::PacketKind::kAck;
  ack.flow = kInvalidFlow;
  ack.src = bot->address();
  ack.dst = rig.victim_addr;
  ack.src_port = 7000;
  ack.dst_port = 80;
  ack.size_bytes = 40;
  ack.seq = 555;
  ack.ack = cookie;
  bot->SendPacket(std::move(ack));
  rig.net->RunUntil(rig.net->Now() + 500 * kMillisecond);
  ASSERT_GE(rig.SumFilterOccupied(), 1u);
  rig.net->RunUntil(rig.net->Now() + 6 * kSecond);
  EXPECT_GE(rig.SumIdleEvictions(), 1u);
  EXPECT_EQ(rig.SumFilterOccupied(), 0u);
}

TEST(SynProxyTest, DeactivationDrainsEstablishedDownloads) {
  // A 20 MB download cannot finish in the active window; the mode clears
  // mid-transfer and the always-on translate module must carry it home.
  SynRig rig(SynProxyConfig{}, /*download_bytes=*/20'000'000);
  rig.SetMode(true);
  const FlowId f = rig.net->StartSynSession(rig.h.clients[0], rig.h.victim,
                                            sim::HandshakeParams{},
                                            rig.net->Now() + 100 * kMillisecond);
  rig.net->RunUntil(rig.net->Now() + 1 * kSecond);
  sim::HandshakeClient* c = rig.Client(rig.h.clients[0], f);
  ASSERT_NE(c, nullptr);
  ASSERT_TRUE(c->established());
  ASSERT_FALSE(c->closed());  // still mid-download when the mode clears
  const std::uint64_t mid_flight = c->delivered_segments();
  rig.SetMode(false);
  rig.net->RunUntil(rig.net->Now() + 40 * kSecond);
  EXPECT_TRUE(c->closed());
  EXPECT_GT(c->delivered_segments(), mid_flight);
  EXPECT_GE(c->delivered_segments() * 1000, 20'000'000u);
  EXPECT_GT(rig.SumSeqTranslated(), 0u);
}

}  // namespace
}  // namespace fastflex::boosters
