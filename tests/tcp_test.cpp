// TCP-like transport tests: throughput, fairness, loss recovery, bounded
// flows, application-limited (attack-style) flows, and UDP pulsing.
#include <gtest/gtest.h>

#include "control/routes.h"
#include "sim/host.h"
#include "sim/network.h"
#include "sim/switch_node.h"
#include "sim/tcp.h"

namespace fastflex::sim {
namespace {

struct Line {
  Topology t;
  NodeId s1, s2;
  std::vector<NodeId> left, right;
  LinkId mid;
  explicit Line(int pairs = 1, double mid_rate = 20e6) {
    s1 = t.AddNode(NodeKind::kSwitch, "s1");
    s2 = t.AddNode(NodeKind::kSwitch, "s2");
    mid = t.AddDuplexLink(s1, s2, mid_rate, 20 * kMillisecond, 100'000);
    for (int i = 0; i < pairs; ++i) {
      const NodeId l = t.AddNode(NodeKind::kHost, "l" + std::to_string(i));
      const NodeId r = t.AddNode(NodeKind::kHost, "r" + std::to_string(i));
      t.AddDuplexLink(s1, l, 1e9, kMillisecond, 1'000'000);
      t.AddDuplexLink(s2, r, 1e9, kMillisecond, 1'000'000);
      left.push_back(l);
      right.push_back(r);
    }
  }
};

double RateOverWindow(Network& net, FlowId f, SimTime from, SimTime to) {
  const auto& series = net.flow_stats(f).goodput;
  double bytes = 0;
  for (SimTime t = from; t < to; t += 100 * kMillisecond) {
    bytes += series.BinTotal(static_cast<std::size_t>(t / (100 * kMillisecond)));
  }
  return bytes * 8.0 / ToSeconds(to - from);
}

TEST(TcpTest, SingleFlowApproachesLinkCapacity) {
  Line line(1, 20e6);
  Network net(line.t, 1);
  control::InstallDstRoutes(net);
  const FlowId f = net.StartTcpFlow(line.left[0], line.right[0], TcpParams{}, kSecond / 2);
  net.RunUntil(15 * kSecond);
  // AIMD sawtooth with queue ~= BDP averages ~70-85% of capacity.
  const double rate = RateOverWindow(net, f, 10 * kSecond, 15 * kSecond);
  EXPECT_GT(rate, 0.65 * 20e6);
  EXPECT_LT(rate, 1.05 * 20e6);
}

TEST(TcpTest, TwoFlowsShareFairly) {
  Line line(2, 20e6);
  Network net(line.t, 1);
  control::InstallDstRoutes(net);
  TcpParams p1, p2;
  p2.min_rto = 230 * kMillisecond;  // desynchronize timers
  const FlowId f1 = net.StartTcpFlow(line.left[0], line.right[0], p1, kSecond / 2);
  const FlowId f2 = net.StartTcpFlow(line.left[1], line.right[1], p2, kSecond);
  net.RunUntil(30 * kSecond);
  const double r1 = RateOverWindow(net, f1, 15 * kSecond, 30 * kSecond);
  const double r2 = RateOverWindow(net, f2, 15 * kSecond, 30 * kSecond);
  EXPECT_GT(r1 + r2, 0.65 * 20e6);  // the pair fills most of the link
  const double ratio = r1 / r2;
  EXPECT_GT(ratio, 0.4);  // and shares it within ~2.5x
  EXPECT_LT(ratio, 2.5);
}

TEST(TcpTest, BoundedFlowCompletesAndStops) {
  Line line(1, 20e6);
  Network net(line.t, 1);
  control::InstallDstRoutes(net);
  TcpParams p;
  p.total_bytes = 500'000;
  const FlowId f = net.StartTcpFlow(line.left[0], line.right[0], p, kSecond / 2);
  net.RunUntil(20 * kSecond);
  const auto& stats = net.flow_stats(f);
  EXPECT_TRUE(stats.completed);
  EXPECT_GE(stats.delivered_bytes, 500'000u);
  EXPECT_GT(stats.completed_at, kSecond / 2);
  EXPECT_LT(stats.completed_at, 10 * kSecond);
}

TEST(TcpTest, MaxCwndCapsRate) {
  Line line(1, 20e6);
  Network net(line.t, 1);
  control::InstallDstRoutes(net);
  TcpParams p;
  p.max_cwnd = 2.0;  // the "low-rate legitimate-looking" attack profile
  const FlowId f = net.StartTcpFlow(line.left[0], line.right[0], p, kSecond / 2);
  net.RunUntil(10 * kSecond);
  // RTT ~44 ms; 2 segments per RTT ~ 360 kbps << capacity.
  const double rate = RateOverWindow(net, f, 5 * kSecond, 10 * kSecond);
  EXPECT_LT(rate, 800e3);
  EXPECT_GT(rate, 100e3);
}

TEST(TcpTest, RecoversFromHeavyLossBurst) {
  // Tiny queue forces repeated loss bursts; throughput must survive.
  Topology t;
  const NodeId s1 = t.AddNode(NodeKind::kSwitch, "s1");
  const NodeId s2 = t.AddNode(NodeKind::kSwitch, "s2");
  const NodeId h1 = t.AddNode(NodeKind::kHost, "h1");
  const NodeId h2 = t.AddNode(NodeKind::kHost, "h2");
  t.AddDuplexLink(s1, s2, 10e6, 10 * kMillisecond, 15'000);  // ~15 packets
  t.AddDuplexLink(s1, h1, 1e9, kMillisecond, 1'000'000);
  t.AddDuplexLink(s2, h2, 1e9, kMillisecond, 1'000'000);
  Network net(t, 1);
  control::InstallDstRoutes(net);
  const FlowId f = net.StartTcpFlow(h1, h2, TcpParams{}, kSecond / 2);
  net.RunUntil(20 * kSecond);
  EXPECT_GT(net.flow_stats(f).retransmits, 0u);
  const double rate = RateOverWindow(net, f, 10 * kSecond, 20 * kSecond);
  EXPECT_GT(rate, 0.5 * 10e6);
}

TEST(TcpTest, StopFlowHaltsTransmission) {
  Line line(1, 20e6);
  Network net(line.t, 1);
  control::InstallDstRoutes(net);
  const FlowId f = net.StartTcpFlow(line.left[0], line.right[0], TcpParams{}, kSecond / 2);
  net.RunUntil(5 * kSecond);
  net.StopFlow(f);
  net.RunUntil(6 * kSecond);  // in-flight data drains
  const auto delivered = net.flow_stats(f).delivered_bytes;
  net.RunUntil(12 * kSecond);
  EXPECT_EQ(net.flow_stats(f).delivered_bytes, delivered);
  EXPECT_TRUE(net.flow_stats(f).stopped);
}

TEST(TcpTest, DeterministicAcrossRuns) {
  auto run = [] {
    Line line(2, 20e6);
    Network net(line.t, 99);
    control::InstallDstRoutes(net);
    const FlowId f1 = net.StartTcpFlow(line.left[0], line.right[0], TcpParams{}, kSecond / 2);
    const FlowId f2 = net.StartTcpFlow(line.left[1], line.right[1], TcpParams{}, kSecond);
    net.RunUntil(10 * kSecond);
    return std::pair{net.flow_stats(f1).delivered_bytes, net.flow_stats(f2).delivered_bytes};
  };
  EXPECT_EQ(run(), run());
}

TEST(TcpTest, RetransmitCounterVisibleToTelemetry) {
  Line line(1, 20e6);
  Network net(line.t, 1);
  control::InstallDstRoutes(net);
  const FlowId f = net.StartTcpFlow(line.left[0], line.right[0], TcpParams{}, kSecond / 2);
  net.RunUntil(15 * kSecond);
  // Slow-start overshoot guarantees at least one loss episode on this BDP.
  EXPECT_GT(net.flow_stats(f).retransmits, 0u);
}

TEST(UdpTest, CbrDeliversConfiguredRate) {
  Line line(1, 20e6);
  Network net(line.t, 1);
  control::InstallDstRoutes(net);
  UdpParams p;
  p.rate_bps = 5e6;
  p.packet_bytes = 1000;
  const FlowId f = net.StartUdpFlow(line.left[0], line.right[0], p, 0);
  net.RunUntil(10 * kSecond);
  const double rate = RateOverWindow(net, f, 2 * kSecond, 10 * kSecond);
  EXPECT_NEAR(rate, 5e6, 0.3e6);
}

TEST(UdpTest, PulsingAlternatesOnOff) {
  Line line(1, 20e6);
  Network net(line.t, 1);
  control::InstallDstRoutes(net);
  UdpParams p;
  p.rate_bps = 8e6;
  p.packet_bytes = 1000;
  p.on_duration = 500 * kMillisecond;
  p.off_duration = 500 * kMillisecond;
  const FlowId f = net.StartUdpFlow(line.left[0], line.right[0], p, 0);
  net.RunUntil(4 * kSecond);
  // Average over a whole period is half the on-rate.
  const double rate = RateOverWindow(net, f, kSecond, 4 * kSecond);
  EXPECT_NEAR(rate, 4e6, 1e6);
  // And at least one 100 ms bin in an off phase is empty.
  const auto& series = net.flow_stats(f).goodput;
  bool has_quiet_bin = false;
  for (std::size_t b = 10; b < 40; ++b) {
    if (series.BinTotal(b) == 0.0) has_quiet_bin = true;
  }
  EXPECT_TRUE(has_quiet_bin);
}

TEST(UdpTest, StopHaltsPulsingFlow) {
  Line line(1, 20e6);
  Network net(line.t, 1);
  control::InstallDstRoutes(net);
  UdpParams p;
  p.rate_bps = 8e6;
  p.on_duration = 200 * kMillisecond;
  p.off_duration = 200 * kMillisecond;
  const FlowId f = net.StartUdpFlow(line.left[0], line.right[0], p, 0);
  net.RunUntil(2 * kSecond);
  net.StopFlow(f);
  net.RunUntil(2 * kSecond + 200 * kMillisecond);
  const auto delivered = net.flow_stats(f).delivered_bytes;
  net.RunUntil(5 * kSecond);
  EXPECT_EQ(net.flow_stats(f).delivered_bytes, delivered);
}

}  // namespace
}  // namespace fastflex::sim
