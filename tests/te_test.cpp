// Centralized TE solver tests: min-max-utilization behavior, spreading,
// determinism, and scaling sanity.
#include <gtest/gtest.h>

#include "scenarios/fattree.h"
#include "scheduler/te.h"

namespace fastflex::scheduler {
namespace {

using sim::NodeKind;
using sim::Topology;

/// Two hosts connected by three parallel 10 Mbps switch paths.
struct Parallel3 {
  Topology t;
  NodeId h1, h2, s1, s2;
  NodeId m[3];
  Parallel3() {
    s1 = t.AddNode(NodeKind::kSwitch, "s1");
    s2 = t.AddNode(NodeKind::kSwitch, "s2");
    for (int i = 0; i < 3; ++i) {
      m[i] = t.AddNode(NodeKind::kSwitch, "m" + std::to_string(i));
      t.AddDuplexLink(s1, m[i], 10e6, kMillisecond, 100000);
      t.AddDuplexLink(m[i], s2, 10e6, kMillisecond, 100000);
    }
    h1 = t.AddNode(NodeKind::kHost, "h1");
    h2 = t.AddNode(NodeKind::kHost, "h2");
    t.AddDuplexLink(s1, h1, 1e9, kMillisecond, 100000);
    t.AddDuplexLink(s2, h2, 1e9, kMillisecond, 100000);
  }
};

TEST(TeTest, SingleDemandGetsShortestPath) {
  Parallel3 net;
  const auto sol = SolveTe(net.t, {{net.h1, net.h2, 1e6, 1}});
  ASSERT_EQ(sol.paths.size(), 1u);
  ASSERT_EQ(sol.paths[0].size(), 5u);  // h1-s1-m?-s2-h2
  EXPECT_NEAR(sol.max_utilization, 0.1, 1e-9);
}

TEST(TeTest, EqualDemandsSpreadAcrossParallelPaths) {
  Parallel3 net;
  std::vector<Demand> demands;
  for (int i = 0; i < 3; ++i) demands.push_back({net.h1, net.h2, 6e6, i + 1});
  const auto sol = SolveTe(net.t, demands, TeOptions{.k_paths = 3});
  // 3 x 6 Mbps over 3 x 10 Mbps paths: min-max puts one per path.
  EXPECT_NEAR(sol.max_utilization, 0.6, 1e-9);
  std::set<NodeId> mids;
  for (const auto& p : sol.paths) mids.insert(p[2]);
  EXPECT_EQ(mids.size(), 3u);
}

TEST(TeTest, KPathsLimitsCandidates) {
  Parallel3 net;
  std::vector<Demand> demands;
  for (int i = 0; i < 2; ++i) demands.push_back({net.h1, net.h2, 6e6, i + 1});
  // With k=1, both demands share the single candidate path.
  const auto sol = SolveTe(net.t, demands, TeOptions{.k_paths = 1});
  EXPECT_NEAR(sol.max_utilization, 1.2, 1e-9);
  EXPECT_EQ(sol.paths[0], sol.paths[1]);
}

TEST(TeTest, LargeDemandsPlacedFirstGetBestPaths) {
  Parallel3 net;
  // One elephant and two mice; the solution must keep max util minimal.
  const auto sol = SolveTe(net.t, {{net.h1, net.h2, 9e6, 1},
                                   {net.h1, net.h2, 2e6, 2},
                                   {net.h1, net.h2, 2e6, 3}},
                           TeOptions{.k_paths = 3});
  EXPECT_LE(sol.max_utilization, 0.9 + 1e-9);
}

TEST(TeTest, UnroutableDemandYieldsEmptyPath) {
  Topology t;
  const NodeId h1 = t.AddNode(NodeKind::kHost, "h1");
  const NodeId h2 = t.AddNode(NodeKind::kHost, "h2");  // no links at all
  const auto sol = SolveTe(t, {{h1, h2, 1e6, 1}});
  ASSERT_EQ(sol.paths.size(), 1u);
  EXPECT_TRUE(sol.paths[0].empty());
}

TEST(TeTest, LinkLoadAccountingConsistent) {
  Parallel3 net;
  std::vector<Demand> demands{{net.h1, net.h2, 3e6, 1}, {net.h1, net.h2, 4e6, 2}};
  const auto sol = SolveTe(net.t, demands, TeOptions{.k_paths = 3});
  double total_on_mids = 0.0;
  for (int i = 0; i < 3; ++i) {
    total_on_mids += sol.link_load_bps[static_cast<std::size_t>(
        *net.t.LinkBetween(net.s1, net.m[i]))];
  }
  EXPECT_NEAR(total_on_mids, 7e6, 1.0);
}

TEST(TeTest, DeterministicAcrossCalls) {
  Parallel3 net;
  std::vector<Demand> demands;
  for (int i = 0; i < 10; ++i) demands.push_back({net.h1, net.h2, 1e6 * (1 + i % 3), i});
  const auto a = SolveTe(net.t, demands, TeOptions{.k_paths = 3});
  const auto b = SolveTe(net.t, demands, TeOptions{.k_paths = 3});
  EXPECT_EQ(a.paths, b.paths);
  EXPECT_DOUBLE_EQ(a.max_utilization, b.max_utilization);
}

TEST(TeTest, RefinementNeverWorsensObjective) {
  Parallel3 net;
  std::vector<Demand> demands;
  for (int i = 0; i < 12; ++i) demands.push_back({net.h1, net.h2, 1e6 + 2e5 * i, i});
  const auto rough = SolveTe(net.t, demands, TeOptions{.k_paths = 3, .refine_rounds = 0});
  const auto refined = SolveTe(net.t, demands, TeOptions{.k_paths = 3, .refine_rounds = 3});
  EXPECT_LE(refined.max_utilization, rough.max_utilization + 1e-9);
}

TEST(TeTest, FatTreeAllToOneUsesPathDiversity) {
  const auto ft = scenarios::BuildFatTree(4);
  std::vector<Demand> demands;
  for (std::size_t i = 1; i < ft.hosts.size(); ++i) {
    demands.push_back({ft.hosts[i], ft.hosts[0], 20e6, static_cast<FlowId>(i)});
  }
  const auto sol = SolveTe(ft.topo, demands, TeOptions{.k_paths = 4});
  for (std::size_t i = 0; i < demands.size(); ++i) {
    EXPECT_FALSE(sol.paths[i].empty()) << "demand " << i << " unrouted";
  }
  // 7 x 20 Mbps converge on one 100 Mbps edge link: that link binds.
  EXPECT_NEAR(sol.max_utilization, 1.4, 0.01);
}

}  // namespace
}  // namespace fastflex::scheduler
