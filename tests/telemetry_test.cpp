// Unit tests for the telemetry subsystem: registry get-or-create identity,
// name building, tracer events/spans, and the JSON/CSV exporters.
#include <gtest/gtest.h>

#include <sstream>

#include "telemetry/export.h"
#include "telemetry/telemetry.h"

namespace fastflex::telemetry {
namespace {

TEST(MetricsRegistry, GetOrCreateReturnsSameInstance) {
  MetricsRegistry reg;
  Counter& c1 = reg.GetCounter("a.b");
  c1.Inc(3);
  Counter& c2 = reg.GetCounter("a.b");
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(c2.value(), 3u);

  Gauge& g1 = reg.GetGauge("a.b");  // same name, different family: distinct
  g1.Set(1.5);
  EXPECT_EQ(reg.GetCounter("a.b").value(), 3u);
  EXPECT_DOUBLE_EQ(reg.GetGauge("a.b").value(), 1.5);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_TRUE(reg.Has("a.b"));
  EXPECT_FALSE(reg.Has("a.c"));
}

TEST(MetricsRegistry, CreationParamsApplyOnlyOnFirstUse) {
  MetricsRegistry reg;
  TimeSeries& s = reg.GetSeries("x", 100);
  EXPECT_EQ(s.bin_width(), 100);
  // Second lookup with a different width returns the original.
  EXPECT_EQ(&reg.GetSeries("x", 999), &s);
  EXPECT_EQ(reg.GetSeries("x", 999).bin_width(), 100);

  Histogram& h = reg.GetHistogram("h", 0.0, 10.0, 5);
  EXPECT_EQ(&reg.GetHistogram("h", -1.0, 1.0, 99), &h);
  EXPECT_EQ(h.num_buckets(), 5u);
}

TEST(MetricsRegistry, ReferencesSurviveLaterInsertions) {
  // Hot paths cache references; inserting thousands of other metrics must
  // not invalidate them (std::map node stability).
  MetricsRegistry reg;
  Counter& pinned = reg.GetCounter("pinned");
  for (int i = 0; i < 2000; ++i) reg.GetCounter(Join("filler", i));
  pinned.Inc();
  EXPECT_EQ(reg.GetCounter("pinned").value(), 1u);
}

TEST(MetricsRegistry, JoinBuildsDottedNames) {
  EXPECT_EQ(Join("link", 3, "tx"), "link.3.tx");
  EXPECT_EQ(Join("solo"), "solo");
  EXPECT_EQ(Join(std::string("a"), std::string("b")), "a.b");
  EXPECT_EQ(Join("switch", NodeId{12}, "pipeline", "walks"), "switch.12.pipeline.walks");
}

TEST(Tracer, EventsAndSpans) {
  Tracer tr;
  tr.Event(5, "alarm", {{"switch", 2}, {"on", 1}});
  tr.Event(9, "alarm", {{"switch", 3}, {"on", 1}});
  tr.Event(7, "other");
  EXPECT_EQ(tr.CountOf("alarm"), 2u);
  EXPECT_EQ(tr.CountOf("missing"), 0u);
  const auto alarms = tr.EventsNamed("alarm");
  ASSERT_EQ(alarms.size(), 2u);
  EXPECT_EQ(alarms[0]->t, 5);
  EXPECT_EQ(alarms[1]->t, 9);
  ASSERT_EQ(alarms[0]->fields.size(), 2u);
  EXPECT_EQ(alarms[0]->fields[0].key, "switch");
  EXPECT_EQ(alarms[0]->fields[0].value, 2);

  const std::uint64_t id = tr.OpenSpan(10, "repurpose", {{"victim", 1}});
  ASSERT_EQ(tr.spans().size(), 1u);
  EXPECT_TRUE(tr.spans()[0].open());
  tr.CloseSpan(id, 30, {{"packets", 4}});
  EXPECT_FALSE(tr.spans()[0].open());
  EXPECT_EQ(tr.spans()[0].duration(), 20);
  ASSERT_EQ(tr.spans()[0].fields.size(), 2u);
  EXPECT_EQ(tr.spans()[0].fields[1].key, "packets");

  // Double close and unknown ids are ignored.
  tr.CloseSpan(id, 99);
  EXPECT_EQ(tr.spans()[0].end, 30);
  tr.CloseSpan(424242, 99);
}

TEST(Tracer, ScopedSpanClosesOnDestruction) {
  Tracer tr;
  SimTime clock = 100;
  {
    ScopedSpan span(tr, [&clock] { return clock; }, "section");
    clock = 250;
  }
  ASSERT_EQ(tr.spans().size(), 1u);
  EXPECT_EQ(tr.spans()[0].begin, 100);
  EXPECT_EQ(tr.spans()[0].end, 250);
}

TEST(Export, JsonContainsAllFamiliesAndSchema) {
  Recorder rec;
  auto& m = rec.metrics();
  m.GetCounter("c.one").Inc(7);
  m.GetGauge("g.one").Set(0.25);
  m.GetSummary("s.one").Add(1.0);
  m.GetSummary("s.one").Add(3.0);
  m.GetEwma("e.one").Update(2.0, 0);
  m.GetSeries("ts.one", kSecond).Add(1500 * kMillisecond, 4.0);
  auto& h = m.GetHistogram("h.one", 0.0, 10.0, 10);
  h.Add(1.0);
  h.Add(9.0);
  rec.trace().Event(3, "evt", {{"k", -5}});
  const std::uint64_t id = rec.trace().OpenSpan(1, "sp");
  rec.trace().CloseSpan(id, 2);

  const std::string json = ToJson(rec);
  EXPECT_NE(json.find("\"schema\":\"fastflex.telemetry.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"c.one\":7"), std::string::npos);
  EXPECT_NE(json.find("\"g.one\":0.25"), std::string::npos);
  EXPECT_NE(json.find("\"s.one\""), std::string::npos);
  EXPECT_NE(json.find("\"ts.one\""), std::string::npos);
  EXPECT_NE(json.find("\"h.one\""), std::string::npos);
  EXPECT_NE(json.find("\"evt\""), std::string::npos);
  EXPECT_NE(json.find("\"k\":-5"), std::string::npos);
  EXPECT_NE(json.find("\"sp\""), std::string::npos);

  // Serialization is a pure function of the recorder contents.
  EXPECT_EQ(json, ToJson(rec));
}

TEST(Export, JsonEscapesStrings) {
  Recorder rec;
  rec.metrics().GetCounter("weird\"name\\with\nstuff").Inc();
  const std::string json = ToJson(rec);
  EXPECT_NE(json.find("weird\\\"name\\\\with\\nstuff"), std::string::npos);
}

TEST(Export, CsvRowsRoundTrip) {
  Recorder rec;
  rec.metrics().GetCounter("c").Inc(2);
  rec.metrics().GetGauge("g").Set(1.5);
  rec.metrics().GetSeries("ts", kSecond).Add(0, 3.0);
  rec.trace().Event(2 * kSecond, "evt", {{"a", 1}});

  std::ostringstream scalars;
  WriteMetricsCsv(rec.metrics(), scalars);
  EXPECT_NE(scalars.str().find("counter,c,2"), std::string::npos);
  EXPECT_NE(scalars.str().find("gauge,g,1.5"), std::string::npos);

  std::ostringstream series;
  WriteSeriesCsv(rec.metrics(), series);
  EXPECT_NE(series.str().find("ts,0,3"), std::string::npos);

  std::ostringstream events;
  WriteEventsCsv(rec.trace(), events);
  EXPECT_NE(events.str().find("2,evt,\"a=1\""), std::string::npos);
}

}  // namespace
}  // namespace fastflex::telemetry
