// Shared test harness: a small live network whose switches carry pipelines
// with mode-protocol agents and state collectors — the minimal FastFlex
// runtime substrate, without the full orchestrator.
#pragma once

#include <memory>
#include <vector>

#include "control/routes.h"
#include "dataplane/pipeline.h"
#include "runtime/mode_protocol.h"
#include "runtime/state_transfer.h"
#include "sim/network.h"
#include "sim/switch_node.h"

namespace fastflex::testing {

struct TestNet {
  sim::Topology topo;
  std::vector<NodeId> switches;
  std::vector<NodeId> hosts;
  std::unique_ptr<sim::Network> net;
  std::vector<std::unique_ptr<dataplane::Pipeline>> pipelines;           // per switch
  std::vector<std::shared_ptr<runtime::ModeProtocolPpm>> agents;        // per switch
  std::vector<std::shared_ptr<runtime::StateCollectorPpm>> collectors;  // per switch

  dataplane::Pipeline* pipe(std::size_t i) { return pipelines[i].get(); }
  runtime::ModeProtocolPpm* agent(std::size_t i) { return agents[i].get(); }
  runtime::StateCollectorPpm* collector(std::size_t i) { return collectors[i].get(); }
  sim::SwitchNode* sw(std::size_t i) { return net->switch_at(switches[i]); }
};

/// Builds a line topology s0 - s1 - ... - s(n-1), one host per end switch
/// (hosts[0] at s0, hosts[1] at the far end; `extra_front_hosts` more are
/// appended at s0), installs routes and a pipeline (agent + collector) on
/// every switch.
inline TestNet MakeLineNet(int n_switches,
                           runtime::ModeProtocolConfig mode_config = {},
                           std::uint64_t seed = 1, int extra_front_hosts = 0) {
  TestNet tn;
  for (int i = 0; i < n_switches; ++i) {
    tn.switches.push_back(
        tn.topo.AddNode(sim::NodeKind::kSwitch, "s" + std::to_string(i)));
    if (i > 0) {
      tn.topo.AddDuplexLink(tn.switches[static_cast<std::size_t>(i - 1)],
                            tn.switches[static_cast<std::size_t>(i)], 100e6,
                            kMillisecond, 200'000);
    }
  }
  tn.hosts.push_back(tn.topo.AddNode(sim::NodeKind::kHost, "h0"));
  tn.topo.AddDuplexLink(tn.switches.front(), tn.hosts[0], 100e6, kMillisecond, 200'000);
  tn.hosts.push_back(tn.topo.AddNode(sim::NodeKind::kHost, "h1"));
  tn.topo.AddDuplexLink(tn.switches.back(), tn.hosts[1], 100e6, kMillisecond, 200'000);
  for (int i = 0; i < extra_front_hosts; ++i) {
    tn.hosts.push_back(
        tn.topo.AddNode(sim::NodeKind::kHost, "hx" + std::to_string(i)));
    tn.topo.AddDuplexLink(tn.switches.front(), tn.hosts.back(), 100e6, kMillisecond,
                          200'000);
  }

  tn.net = std::make_unique<sim::Network>(tn.topo, seed);
  control::InstallDstRoutes(*tn.net);
  for (NodeId s : tn.switches) {
    auto pipe = std::make_unique<dataplane::Pipeline>(dataplane::DefaultSwitchCapacity());
    auto agent = std::make_shared<runtime::ModeProtocolPpm>(tn.net.get(), tn.net->switch_at(s),
                                                            pipe.get(), mode_config);
    auto collector =
        std::make_shared<runtime::StateCollectorPpm>(tn.net.get(), tn.net->switch_at(s));
    pipe->Install(agent);
    pipe->Install(collector);
    tn.net->switch_at(s)->SetProcessor(pipe.get());
    tn.pipelines.push_back(std::move(pipe));
    tn.agents.push_back(std::move(agent));
    tn.collectors.push_back(std::move(collector));
  }
  return tn;
}

}  // namespace fastflex::testing
