// Topology and path-algorithm tests (Dijkstra, Yen's k-shortest paths).
#include <gtest/gtest.h>

#include "sim/topology.h"
#include "scenarios/fattree.h"

namespace fastflex::sim {
namespace {

/// Diamond: a - {b, c} - d, plus a long way a - e - f - d.
struct Diamond {
  Topology t;
  NodeId a, b, c, d, e, f;
  Diamond() {
    a = t.AddNode(NodeKind::kSwitch, "a");
    b = t.AddNode(NodeKind::kSwitch, "b");
    c = t.AddNode(NodeKind::kSwitch, "c");
    d = t.AddNode(NodeKind::kSwitch, "d");
    e = t.AddNode(NodeKind::kSwitch, "e");
    f = t.AddNode(NodeKind::kSwitch, "f");
    t.AddDuplexLink(a, b, 1e9, kMillisecond, 100000);
    t.AddDuplexLink(a, c, 1e9, kMillisecond, 100000);
    t.AddDuplexLink(b, d, 1e9, kMillisecond, 100000);
    t.AddDuplexLink(c, d, 1e9, kMillisecond, 100000);
    t.AddDuplexLink(a, e, 1e9, kMillisecond, 100000);
    t.AddDuplexLink(e, f, 1e9, kMillisecond, 100000);
    t.AddDuplexLink(f, d, 1e9, kMillisecond, 100000);
  }
};

TEST(TopologyTest, DuplexLinkCreatesPairedSimplexLinks) {
  Topology t;
  const NodeId a = t.AddNode(NodeKind::kSwitch, "a");
  const NodeId b = t.AddNode(NodeKind::kSwitch, "b");
  const LinkId fwd = t.AddDuplexLink(a, b, 1e9, kMillisecond, 1000);
  const LinkInfo& fl = t.link(fwd);
  const LinkInfo& rl = t.link(fl.reverse);
  EXPECT_EQ(fl.from, a);
  EXPECT_EQ(fl.to, b);
  EXPECT_EQ(rl.from, b);
  EXPECT_EQ(rl.to, a);
  EXPECT_EQ(rl.reverse, fwd);
  EXPECT_EQ(t.NumLinks(), 2u);
}

TEST(TopologyTest, NodeAddressesAreUnique) {
  Topology t;
  const NodeId s = t.AddNode(NodeKind::kSwitch, "s");
  const NodeId h1 = t.AddNode(NodeKind::kHost, "h1");
  const NodeId h2 = t.AddNode(NodeKind::kHost, "h2");
  EXPECT_NE(t.node(h1).address, t.node(h2).address);
  EXPECT_NE(t.node(s).address, t.node(h1).address);
}

TEST(TopologyTest, FindByName) {
  Topology t;
  t.AddNode(NodeKind::kSwitch, "alpha");
  const NodeId beta = t.AddNode(NodeKind::kSwitch, "beta");
  EXPECT_EQ(t.FindByName("beta"), beta);
  EXPECT_EQ(t.FindByName("gamma"), kInvalidNode);
}

TEST(TopologyTest, LinkBetweenFindsAdjacency) {
  Diamond d;
  EXPECT_TRUE(d.t.LinkBetween(d.a, d.b).has_value());
  EXPECT_FALSE(d.t.LinkBetween(d.a, d.d).has_value());
}

TEST(ShortestPathTest, PicksMinimumHops) {
  Diamond d;
  const Path p = d.t.ShortestPath(d.a, d.d);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p.front(), d.a);
  EXPECT_EQ(p.back(), d.d);
}

TEST(ShortestPathTest, UnreachableReturnsEmpty) {
  Topology t;
  const NodeId a = t.AddNode(NodeKind::kSwitch, "a");
  const NodeId b = t.AddNode(NodeKind::kSwitch, "b");
  EXPECT_TRUE(t.ShortestPath(a, b).empty());
}

TEST(ShortestPathTest, RespectsCostOverride) {
  Diamond d;
  std::vector<double> cost(d.t.NumLinks(), 1.0);
  // Make both short branches prohibitively expensive.
  cost[static_cast<std::size_t>(*d.t.LinkBetween(d.a, d.b))] = 100.0;
  cost[static_cast<std::size_t>(*d.t.LinkBetween(d.a, d.c))] = 100.0;
  const Path p = d.t.ShortestPath(d.a, d.d, &cost);
  ASSERT_EQ(p.size(), 4u);  // the long way via e, f
  EXPECT_EQ(p[1], d.e);
}

TEST(ShortestPathTest, InfiniteCostRemovesLink) {
  Topology t;
  const NodeId a = t.AddNode(NodeKind::kSwitch, "a");
  const NodeId b = t.AddNode(NodeKind::kSwitch, "b");
  t.AddDuplexLink(a, b, 1e9, kMillisecond, 1000);
  std::vector<double> cost(t.NumLinks(), std::numeric_limits<double>::infinity());
  EXPECT_TRUE(t.ShortestPath(a, b, &cost).empty());
}

TEST(ShortestPathTest, HostsDoNotTransit) {
  // a - h - b where h is a host: no path a->b through it.
  Topology t;
  const NodeId a = t.AddNode(NodeKind::kSwitch, "a");
  const NodeId h = t.AddNode(NodeKind::kHost, "h");
  const NodeId b = t.AddNode(NodeKind::kSwitch, "b");
  t.AddDuplexLink(a, h, 1e9, kMillisecond, 1000);
  t.AddDuplexLink(h, b, 1e9, kMillisecond, 1000);
  EXPECT_TRUE(t.ShortestPath(a, b).empty());
  // But a host can be an endpoint.
  EXPECT_EQ(t.ShortestPath(a, h).size(), 2u);
}

TEST(KShortestTest, ReturnsDistinctLoopFreePathsInOrder) {
  Diamond d;
  const auto paths = d.t.KShortestPaths(d.a, d.d, 3);
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_EQ(paths[0].size(), 3u);
  EXPECT_EQ(paths[1].size(), 3u);
  EXPECT_EQ(paths[2].size(), 4u);  // the detour comes last
  EXPECT_NE(paths[0], paths[1]);
  for (const auto& p : paths) {
    std::set<NodeId> uniq(p.begin(), p.end());
    EXPECT_EQ(uniq.size(), p.size()) << "path has a loop";
  }
}

TEST(KShortestTest, StopsWhenExhausted) {
  Diamond d;
  const auto paths = d.t.KShortestPaths(d.a, d.d, 50);
  // The diamond has exactly 3 simple a->d paths.
  EXPECT_EQ(paths.size(), 3u);
}

TEST(KShortestTest, KOneEqualsShortest) {
  Diamond d;
  const auto paths = d.t.KShortestPaths(d.a, d.d, 1);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], d.t.ShortestPath(d.a, d.d));
}

TEST(PathLinksTest, MapsNodePairsToLinks) {
  Diamond d;
  const Path p = d.t.ShortestPath(d.a, d.d);
  const auto links = d.t.PathLinks(p);
  ASSERT_EQ(links.size(), 2u);
  EXPECT_EQ(d.t.link(links[0]).from, d.a);
  EXPECT_EQ(d.t.link(links[1]).to, d.d);
}

TEST(PathLinksTest, NonAdjacentPathYieldsEmpty) {
  Diamond d;
  EXPECT_TRUE(d.t.PathLinks({d.a, d.d}).empty());
}

TEST(FatTreeTest, K4HasExpectedShape) {
  const auto ft = scenarios::BuildFatTree(4);
  EXPECT_EQ(ft.core.size(), 4u);
  EXPECT_EQ(ft.aggregation.size(), 8u);
  EXPECT_EQ(ft.edge.size(), 8u);
  EXPECT_EQ(ft.hosts.size(), 8u);
  // Any host pair in different pods is reachable.
  const Path p = ft.topo.ShortestPath(ft.hosts.front(), ft.hosts.back());
  ASSERT_FALSE(p.empty());
  EXPECT_EQ(p.size(), 7u);  // host-edge-agg-core-agg-edge-host
}

TEST(FatTreeTest, CrossPodPathDiversityMatchesTheory) {
  const auto ft = scenarios::BuildFatTree(4);
  // In a k=4 fat tree there are (k/2)^2 = 4 shortest core paths between
  // hosts in different pods.
  const auto paths = ft.topo.KShortestPaths(ft.hosts.front(), ft.hosts.back(), 8);
  int shortest = 0;
  for (const auto& p : paths) shortest += (p.size() == 7u);
  EXPECT_EQ(shortest, 4);
}

}  // namespace
}  // namespace fastflex::sim
