// Traceroute tests: hop discovery, destination echo, loss tolerance.
#include <gtest/gtest.h>

#include "control/routes.h"
#include "sim/host.h"
#include "sim/network.h"
#include "sim/switch_node.h"

namespace fastflex::sim {
namespace {

struct Chain {
  Topology t;
  std::vector<NodeId> switches;
  NodeId h1, h2;
  explicit Chain(int n_switches) {
    for (int i = 0; i < n_switches; ++i) {
      switches.push_back(t.AddNode(NodeKind::kSwitch, "s" + std::to_string(i)));
      if (i > 0) {
        t.AddDuplexLink(switches[static_cast<std::size_t>(i - 1)],
                        switches[static_cast<std::size_t>(i)], 1e9, kMillisecond, 100'000);
      }
    }
    h1 = t.AddNode(NodeKind::kHost, "h1");
    h2 = t.AddNode(NodeKind::kHost, "h2");
    t.AddDuplexLink(switches.front(), h1, 1e9, kMillisecond, 100'000);
    t.AddDuplexLink(switches.back(), h2, 1e9, kMillisecond, 100'000);
  }
};

TEST(TracerouteTest, DiscoversAllHopsAndDestination) {
  Chain chain(4);
  Network net(chain.t, 1);
  control::InstallDstRoutes(net);
  TracerouteResult result;
  bool done = false;
  net.host_at(chain.h1)->Traceroute(net.topology().node(chain.h2).address, 10,
                                    500 * kMillisecond, [&](const TracerouteResult& r) {
                                      result = r;
                                      done = true;
                                    });
  net.RunUntil(kSecond);
  ASSERT_TRUE(done);
  ASSERT_EQ(result.hops.size(), 5u);  // 4 switches + destination
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(result.hops[static_cast<std::size_t>(i)],
              net.topology().node(chain.switches[static_cast<std::size_t>(i)]).address);
  }
  EXPECT_EQ(result.hops.back(), net.topology().node(chain.h2).address);
  EXPECT_TRUE(result.reached_destination);
}

TEST(TracerouteTest, MaxTtlTruncatesPath) {
  Chain chain(5);
  Network net(chain.t, 1);
  control::InstallDstRoutes(net);
  TracerouteResult result;
  net.host_at(chain.h1)->Traceroute(net.topology().node(chain.h2).address, 3,
                                    500 * kMillisecond,
                                    [&](const TracerouteResult& r) { result = r; });
  net.RunUntil(kSecond);
  EXPECT_EQ(result.hops.size(), 3u);
  EXPECT_FALSE(result.reached_destination);
}

TEST(TracerouteTest, PathEndsAtFirstHole) {
  // An offline middle switch swallows probes with larger TTLs.
  Chain chain(4);
  Network net(chain.t, 1);
  control::InstallDstRoutes(net);
  net.switch_at(chain.switches[2])->SetOffline(true);
  TracerouteResult result;
  net.host_at(chain.h1)->Traceroute(net.topology().node(chain.h2).address, 10,
                                    500 * kMillisecond,
                                    [&](const TracerouteResult& r) { result = r; });
  net.RunUntil(kSecond);
  // Hops 1 and 2 respond; hop 3 is dark, so the result stops there.
  EXPECT_EQ(result.hops.size(), 2u);
  EXPECT_FALSE(result.reached_destination);
}

TEST(TracerouteTest, ConcurrentSessionsDoNotInterfere) {
  Chain chain(3);
  Network net(chain.t, 1);
  control::InstallDstRoutes(net);
  TracerouteResult r1, r2;
  Host* h1 = net.host_at(chain.h1);
  h1->Traceroute(net.topology().node(chain.h2).address, 10, 500 * kMillisecond,
                 [&](const TracerouteResult& r) { r1 = r; });
  h1->Traceroute(net.topology().node(chain.switches[1]).address, 10, 500 * kMillisecond,
                 [&](const TracerouteResult& r) { r2 = r; });
  net.RunUntil(kSecond);
  EXPECT_EQ(r1.hops.size(), 4u);
  EXPECT_TRUE(r1.reached_destination);
  // Tracing to a switch address: the probe expires there, so the last hop
  // reports the switch itself (never an echo).
  ASSERT_GE(r2.hops.size(), 2u);
  EXPECT_EQ(r2.hops[1], net.topology().node(chain.switches[1]).address);
}

TEST(TracerouteTest, ProcessorHookRewritesReportedAddress) {
  // A processor that reports a fixed fake address for every expiry.
  class FakeReporter : public PacketProcessor {
   public:
    void Process(PacketContext&) override {}
    Address TracerouteReportAddress(const Packet&, Address) override { return 0xdeadbeef; }
  };
  Chain chain(3);
  Network net(chain.t, 1);
  control::InstallDstRoutes(net);
  FakeReporter fake;
  net.switch_at(chain.switches[1])->SetProcessor(&fake);
  TracerouteResult result;
  net.host_at(chain.h1)->Traceroute(net.topology().node(chain.h2).address, 10,
                                    500 * kMillisecond,
                                    [&](const TracerouteResult& r) { result = r; });
  net.RunUntil(kSecond);
  ASSERT_GE(result.hops.size(), 2u);
  EXPECT_EQ(result.hops[1], 0xdeadbeefu);
  // Other hops are truthful.
  EXPECT_EQ(result.hops[0], net.topology().node(chain.switches[0]).address);
}

}  // namespace
}  // namespace fastflex::sim
