// Tests for the util library: deterministic RNG, hashing, statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "util/hash.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/types.h"

namespace fastflex {
namespace {

TEST(TimeTest, ConversionRoundTrips) {
  EXPECT_EQ(FromSeconds(1.0), kSecond);
  EXPECT_EQ(FromSeconds(0.001), kMillisecond);
  EXPECT_DOUBLE_EQ(ToSeconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(ToMillis(kMillisecond), 1.0);
  EXPECT_EQ(FromMillis(2.5), 2 * kMillisecond + 500 * kMicrosecond);
}

TEST(AddressTest, DottedQuadRendering) {
  EXPECT_EQ(AddressToString(0x0a000001), "10.0.0.1");
  EXPECT_EQ(AddressToString(0xc0a80005), "192.168.0.5");
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10'000; ++i) {
    const std::int64_t v = rng.UniformInt(2, 9);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 8u);  // all values hit
}

TEST(RngTest, BernoulliRespectsEdgeProbabilities) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(42);
  Rng forked = a.Fork();
  Rng b(42);
  b.Fork();
  // The parent stream after forking still matches a replay.
  EXPECT_EQ(a.Next(), b.Next());
  // And the fork differs from the parent.
  Rng a2(42);
  EXPECT_NE(forked.Next(), a2.Next());
}

TEST(HashTest, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(Mix64(1), Mix64(1));
  std::set<std::uint64_t> outs;
  for (std::uint64_t i = 0; i < 1000; ++i) outs.insert(Mix64(i));
  EXPECT_EQ(outs.size(), 1000u);
}

TEST(HashTest, HashKeySeedsAreIndependent) {
  int collisions = 0;
  for (std::uint64_t k = 0; k < 1000; ++k) {
    if (HashKey(k, 1) % 64 == HashKey(k, 2) % 64) ++collisions;
  }
  // Two independent hashes collide mod 64 with p ~ 1/64.
  EXPECT_LT(collisions, 40);
}

TEST(HashTest, FnvDistinguishesStrings) {
  EXPECT_NE(FnvHash("parser"), FnvHash("deparser"));
  EXPECT_EQ(FnvHash("abc"), FnvHash("abc"));
}

TEST(SummaryTest, BasicMoments) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.Add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
  EXPECT_NEAR(s.variance(), 2.5, 1e-12);  // sample variance
}

TEST(SummaryTest, EmptySummaryIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(EwmaTest, ConvergesToConstantInput) {
  Ewma e(0.1);
  for (int i = 0; i < 100; ++i) e.Update(10.0, i * 10 * kMillisecond);
  EXPECT_NEAR(e.value(), 10.0, 0.01);
}

TEST(EwmaTest, DecaysTowardZeroWithoutSamples) {
  Ewma e(0.1);
  e.Update(10.0, 0);
  EXPECT_LT(e.ValueAt(kSecond), 1.0);  // 10 time constants later
  EXPECT_GT(e.ValueAt(10 * kMillisecond), 8.0);
}

TEST(EwmaTest, FirstSampleTakenVerbatim) {
  Ewma e(1.0);
  e.Update(42.0, 5 * kSecond);
  EXPECT_DOUBLE_EQ(e.value(), 42.0);
}

TEST(TimeSeriesTest, BinsAccumulateAndRate) {
  TimeSeries ts(kSecond);
  ts.Add(100 * kMillisecond, 10.0);
  ts.Add(900 * kMillisecond, 5.0);
  ts.Add(1500 * kMillisecond, 7.0);
  EXPECT_DOUBLE_EQ(ts.BinTotal(0), 15.0);
  EXPECT_DOUBLE_EQ(ts.BinTotal(1), 7.0);
  EXPECT_DOUBLE_EQ(ts.Rate(0), 15.0);
  EXPECT_DOUBLE_EQ(ts.BinTotal(5), 0.0);  // untouched bins read as zero
}

TEST(TimeSeriesTest, NegativeTimesClampToFirstBin) {
  TimeSeries ts(kSecond);
  ts.Add(-5, 3.0);
  EXPECT_DOUBLE_EQ(ts.BinTotal(0), 3.0);
}

TEST(HistogramTest, PercentilesOrdered) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 1000; ++i) h.Add(static_cast<double>(i % 100));
  const double p50 = h.Percentile(50);
  const double p99 = h.Percentile(99);
  EXPECT_LT(p50, p99);
  EXPECT_NEAR(p50, 50.0, 2.0);
}

TEST(HistogramTest, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 10.0, 10);
  h.Add(-100.0);
  h.Add(1000.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_LT(h.Percentile(10), 1.0);
  EXPECT_GT(h.Percentile(90), 9.0);
}

}  // namespace
}  // namespace fastflex
