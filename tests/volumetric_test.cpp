// Volumetric DDoS booster tests: detection on per-destination byte rates,
// heavy-hitter filtering, alarm clear, end-to-end mitigation of a UDP flood.
#include <gtest/gtest.h>

#include "attacks/generators.h"
#include "boosters/heavy_hitter.h"
#include "test_net.h"

namespace fastflex::boosters {
namespace {

using fastflex::testing::MakeLineNet;
using fastflex::testing::TestNet;

TEST(VolumetricDetectorTest, AlarmFiresAboveThreshold) {
  TestNet tn = MakeLineNet(2);
  const Address victim = tn.net->topology().node(tn.hosts[1]).address;
  VolumetricConfig config;
  config.dst_rate_alarm_bps = 10e6;
  std::vector<bool> alarms;
  auto det = std::make_shared<VolumetricDetectorPpm>(
      tn.net.get(), tn.sw(0), std::vector<Address>{victim}, config,
      [&](std::uint32_t, std::uint32_t, bool on) { alarms.push_back(on); });
  tn.pipe(0)->Install(det);
  det->StartTimers();

  // 20 Mbps toward the victim through switch 0.
  sim::UdpParams udp;
  udp.rate_bps = 20e6;
  udp.packet_bytes = 1000;
  tn.net->StartUdpFlow(tn.hosts[0], tn.hosts[1], udp, 0);
  tn.net->RunUntil(kSecond);
  ASSERT_FALSE(alarms.empty());
  EXPECT_TRUE(alarms.front());
  EXPECT_TRUE(det->alarm_active());
  EXPECT_GT(det->LastRateBps(victim), 10e6);
}

TEST(VolumetricDetectorTest, QuietDestinationNeverAlarms) {
  TestNet tn = MakeLineNet(2);
  const Address victim = tn.net->topology().node(tn.hosts[1]).address;
  VolumetricConfig config;
  config.dst_rate_alarm_bps = 10e6;
  int alarm_count = 0;
  auto det = std::make_shared<VolumetricDetectorPpm>(
      tn.net.get(), tn.sw(0), std::vector<Address>{victim}, config,
      [&](std::uint32_t, std::uint32_t, bool) { ++alarm_count; });
  tn.pipe(0)->Install(det);
  det->StartTimers();
  sim::UdpParams udp;
  udp.rate_bps = 1e6;  // well under the threshold
  tn.net->StartUdpFlow(tn.hosts[0], tn.hosts[1], udp, 0);
  tn.net->RunUntil(2 * kSecond);
  EXPECT_EQ(alarm_count, 0);
}

TEST(VolumetricDetectorTest, AlarmClearsWhenAttackStops) {
  TestNet tn = MakeLineNet(2);
  const Address victim = tn.net->topology().node(tn.hosts[1]).address;
  VolumetricConfig config;
  config.dst_rate_alarm_bps = 10e6;
  config.dst_rate_clear_bps = 2e6;
  std::vector<bool> alarms;
  auto det = std::make_shared<VolumetricDetectorPpm>(
      tn.net.get(), tn.sw(0), std::vector<Address>{victim}, config,
      [&](std::uint32_t, std::uint32_t, bool on) { alarms.push_back(on); });
  tn.pipe(0)->Install(det);
  det->StartTimers();
  sim::UdpParams udp;
  udp.rate_bps = 20e6;
  udp.packet_bytes = 1000;
  const FlowId flood = tn.net->StartUdpFlow(tn.hosts[0], tn.hosts[1], udp, 0);
  tn.net->events().ScheduleAt(2 * kSecond, [&] { tn.net->StopFlow(flood); });
  tn.net->RunUntil(5 * kSecond);
  ASSERT_GE(alarms.size(), 2u);
  EXPECT_TRUE(alarms.front());
  EXPECT_FALSE(alarms.back());
  EXPECT_FALSE(det->alarm_active());
}

TEST(HeavyHitterFilterTest, BlocksDominantSourceSparesMice) {
  TestNet tn = MakeLineNet(2);
  VolumetricConfig config;
  config.src_share_drop = 0.2;
  auto filter = std::make_shared<HeavyHitterFilterPpm>(tn.net.get(), config);
  tn.pipe(0)->Install(filter);
  filter->StartTimers();
  tn.pipe(0)->ActivateMode(dataplane::mode::kVolumetricFilter);

  // The elephant sends 30 Mbps — above both the share and the absolute
  // rate floors.
  sim::UdpParams elephant;
  elephant.rate_bps = 30e6;
  elephant.packet_bytes = 1000;
  const FlowId big = tn.net->StartUdpFlow(tn.hosts[0], tn.hosts[1], elephant, 0);
  (void)big;
  tn.net->RunUntil(2 * kSecond);
  // After at least one evaluation window, the elephant's source is blocked.
  EXPECT_FALSE(filter->blocked().empty());
  EXPECT_GT(filter->dropped(), 0u);
}

TEST(HeavyHitterFilterTest, InactiveModeNeverDrops) {
  TestNet tn = MakeLineNet(2);
  auto filter = std::make_shared<HeavyHitterFilterPpm>(tn.net.get(), VolumetricConfig{});
  tn.pipe(0)->Install(filter);
  filter->StartTimers();
  sim::UdpParams udp;
  udp.rate_bps = 30e6;
  tn.net->StartUdpFlow(tn.hosts[0], tn.hosts[1], udp, 0);
  tn.net->RunUntil(2 * kSecond);
  EXPECT_EQ(filter->dropped(), 0u);  // mode off: the module never ran
}

TEST(VolumetricEndToEndTest, DetectionActivatesFilterAndVictimRecovers) {
  // Line of 3 switches; flood from a bot host, victim at h1 (far end); a
  // legitimate TCP flow from a separate host shares the path.  Volumetric
  // detector + filter on every switch, wired through the mode protocol.
  TestNet tn = MakeLineNet(3, {}, 1, /*extra_front_hosts=*/1);
  const Address victim = tn.net->topology().node(tn.hosts[1]).address;
  VolumetricConfig config;
  config.dst_rate_alarm_bps = 30e6;
  config.src_share_drop = 0.5;
  std::vector<std::shared_ptr<HeavyHitterFilterPpm>> filters;
  for (std::size_t i = 0; i < 3; ++i) {
    auto* agent = tn.agent(i);
    auto det = std::make_shared<VolumetricDetectorPpm>(
        tn.net.get(), tn.sw(i), std::vector<Address>{victim}, config,
        [agent](std::uint32_t attack, std::uint32_t modes, bool on) {
          agent->RaiseAlarm(attack, modes, on);
        });
    auto filter = std::make_shared<HeavyHitterFilterPpm>(tn.net.get(), config,
                                                         std::vector<Address>{victim});
    tn.pipe(i)->Install(det);
    tn.pipe(i)->Install(filter);
    det->StartTimers();
    filter->StartTimers();
    filters.push_back(filter);
  }

  // A bounded-demand legitimate flow (~10 Mbps) — well under the alarm
  // threshold; an uncapped greedy flow could legitimately exceed it on this
  // idle 100 Mbps path, which would rightly look volumetric.
  sim::TcpParams good_params;
  good_params.max_cwnd = 8.0;
  const FlowId good = tn.net->StartTcpFlow(tn.hosts[0], tn.hosts[1], good_params, 0);
  // The flood saturates the 100 Mbps path from t=3s, from the bot host.
  attacks::VolumetricConfig atk;
  atk.bots = {tn.hosts[2]};
  atk.victim = tn.hosts[1];
  atk.rate_per_bot_bps = 90e6;
  atk.start = 3 * kSecond;
  attacks::LaunchVolumetric(*tn.net, atk);
  tn.net->RunUntil(12 * kSecond);

  // The filter engaged somewhere and is dropping flood traffic.
  std::uint64_t drops = 0;
  for (const auto& f : filters) drops += f->dropped();
  EXPECT_GT(drops, 1000u);
  EXPECT_TRUE(tn.pipe(0)->ModeActive(dataplane::mode::kVolumetricFilter));

  // Once the filter settles, the legitimate flow regains real throughput.
  const auto& series = tn.net->flow_stats(good).goodput;
  double bytes_late = 0;
  for (std::size_t b = 80; b < 120; ++b) bytes_late += series.BinTotal(b);
  EXPECT_GT(bytes_late * 8 / 4.0, 4e6);  // > 4 Mbps average over t=8-12s
}

TEST(PulsingAttackTest, ShortClearWindowFlapsLongWindowHolds) {
  // A pulsing attack (500 ms on / 1500 ms off, Luo & Chang style) against
  // the volumetric defense.  With a clear window shorter than the off-phase
  // the defense drops its guard between pulses and re-engages on every
  // pulse; sizing the clear window past the duty cycle keeps the mode up
  // for the whole attack — the multimode abstraction handling "short-lived
  // pulsing attacks" (Figure 2 caption).
  auto run = [](int clear_checks) {
    TestNet tn = MakeLineNet(2, {}, 1, 1);
    const Address victim = tn.net->topology().node(tn.hosts[1]).address;
    VolumetricConfig config;
    config.dst_rate_alarm_bps = 20e6;
    config.dst_rate_clear_bps = 5e6;
    config.clear_checks = clear_checks;
    auto* agent = tn.agent(0);
    auto det = std::make_shared<VolumetricDetectorPpm>(
        tn.net.get(), tn.sw(0), std::vector<Address>{victim}, config,
        [agent](std::uint32_t attack, std::uint32_t modes, bool on) {
          agent->RaiseAlarm(attack, modes, on);
        });
    tn.pipe(0)->Install(det);
    det->StartTimers();

    attacks::PulsingConfig pulse;
    pulse.bots = {tn.hosts[2]};
    pulse.victim = tn.hosts[1];
    pulse.rate_per_bot_bps = 60e6;
    pulse.on_duration = 500 * kMillisecond;
    pulse.off_duration = 1500 * kMillisecond;
    pulse.start = kSecond;
    attacks::LaunchPulsing(*tn.net, pulse);

    // Sample mode state every 100 ms over five pulse periods.
    int samples = 0;
    int active = 0;
    for (SimTime t = 2 * kSecond; t <= 11 * kSecond; t += 100 * kMillisecond) {
      tn.net->RunUntil(t);
      ++samples;
      active += tn.pipe(0)->ModeActive(dataplane::mode::kVolumetricFilter);
    }
    return std::pair{static_cast<double>(active) / samples,
                     agent->mode_applications()};
  };

  // Clear window 1 s < 1.5 s off-phase: guard drops between pulses.
  const auto [coverage_short, flips_short] = run(10);
  EXPECT_LT(coverage_short, 0.95);
  EXPECT_GE(flips_short, 4u);  // re-engages repeatedly

  // Clear window 3 s > off-phase: continuously defended.
  const auto [coverage_long, flips_long] = run(30);
  EXPECT_GT(coverage_long, 0.99);
  EXPECT_LE(flips_long, 2u);
}

}  // namespace
}  // namespace fastflex::boosters
