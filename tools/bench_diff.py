#!/usr/bin/env python3
"""Bench-regression gate: diff bench/sweep artifacts against committed baselines.

Reads a gates file (bench/baselines/gates.json) listing checks of four types:

  compare    Walk an artifact and its committed baseline in parallel.
             Structure (keys, array lengths, value types) must match
             exactly; strings and bools must be equal; numeric leaves named
             in `exact_leaves` must be equal; numbers under a subtree named
             in `timing_subtrees` are structure-checked only (wall-clock
             values are machine-dependent); all other numbers must agree
             within `num_rel_tol` / `num_abs_tol` (physics outcomes drift
             slightly across libm versions, so exactness is reserved for
             machine-independent fields like seeds and indices).
  flag       A boolean at a dotted path in an artifact must equal `expect`.
             Used for the in-run determinism verdict (1 vs 8 threads
             bit-identical), which is machine-independent.
  threshold  A number at a dotted path must be >= `min` and/or <= `max`
             (at least one bound required).  With `cpu_scaled`, the lower
             bound becomes min(`min`, factor * cpus) where cpus is read
             from the artifact: a 2-core runner cannot show a 3x thread
             speedup and should not fail for lacking hardware.  Upper
             bounds suit sim-time latencies (failover, reconvergence),
             which are machine-independent.
  ratio      In a google-benchmark JSON artifact, benchmark `numerator`'s
             `field` divided by benchmark `denominator`'s must be >= `min`.
             In-run ratios (pooled vs heap path in the same binary) are the
             machine-independent way to gate an optimization.

Exit code 0 iff every check passes.  A markdown report is always written
(--report), so CI can upload it as an artifact even on failure.  With
--markdown PATH a compact one-row-per-gate table (gate, value, bound,
result) is also written — CI appends it to $GITHUB_STEP_SUMMARY so the gate
outcome is readable without downloading artifacts.

Refreshing baselines after an intended change:
  python3 tools/bench_diff.py --gates bench/baselines/gates.json \
      --artifact-dir build/bench --update-baselines
"""

import argparse
import json
import os
import sys


def load_json(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def dotted(obj, path):
    cur = obj
    for part in path.split("."):
        if not isinstance(cur, dict) or part not in cur:
            raise KeyError(f"path '{path}' not found (missing '{part}')")
        cur = cur[part]
    return cur


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def compare_trees(art, base, opts, path, errors):
    """Recursive structural diff; appends human-readable errors."""
    if len(errors) > opts["max_errors"]:
        return
    in_timing = False
    for t in opts["timing_subtrees"]:
        if path == t or path.startswith(t + ".") or path.startswith(t + "["):
            in_timing = True
            opts["seen_timing"].add(t)
    if isinstance(base, dict):
        if not isinstance(art, dict):
            errors.append(f"{path or '$'}: expected object, got {type(art).__name__}")
            return
        for k in sorted(base.keys() | art.keys()):
            sub = f"{path}.{k}" if path else k
            if k not in art:
                errors.append(f"{sub}: missing from artifact")
            elif k not in base:
                errors.append(f"{sub}: not in baseline (unexpected key)")
            else:
                compare_trees(art[k], base[k], opts, sub, errors)
    elif isinstance(base, list):
        if not isinstance(art, list):
            errors.append(f"{path}: expected array, got {type(art).__name__}")
            return
        if len(art) != len(base):
            errors.append(f"{path}: length {len(art)} != baseline {len(base)}")
            return
        for i, (a, b) in enumerate(zip(art, base)):
            compare_trees(a, b, opts, f"{path}[{i}]", errors)
    elif is_number(base):
        leaf = path.rsplit(".", 1)[-1].split("[")[0]
        if leaf in opts["exact_leaves"]:
            opts["seen_exact"].add(leaf)
        if not is_number(art):
            errors.append(f"{path}: expected number, got {type(art).__name__}")
        elif in_timing:
            pass  # machine-dependent wall-clock value: structure only
        else:
            if leaf in opts["exact_leaves"]:
                if art != base:
                    errors.append(f"{path}: {art} != baseline {base} (exact field)")
            else:
                diff = abs(art - base)
                scale = max(abs(art), abs(base))
                if diff > opts["num_abs_tol"] and diff > opts["num_rel_tol"] * scale:
                    errors.append(
                        f"{path}: {art} vs baseline {base} "
                        f"(rel {diff / scale:.3g} > {opts['num_rel_tol']})"
                    )
    else:
        # Non-numeric leaf (string/bool/null): always compared exactly, but
        # still counts as sighting its name for the referenced-metric audit.
        leaf = path.rsplit(".", 1)[-1].split("[")[0]
        if leaf in opts["exact_leaves"]:
            opts["seen_exact"].add(leaf)
        if art != base:
            errors.append(f"{path}: {art!r} != baseline {base!r}")


def bench_entry(gb_json, name):
    for b in gb_json.get("benchmarks", []):
        if b.get("name") == name:
            return b
    raise KeyError(f"benchmark '{name}' not found in artifact")


def run_check(check, args):
    """Returns (ok, detail_lines, (value_str, bound_str)) — the last pair
    feeds the --markdown gate table."""
    kind = check["type"]
    art_path = os.path.join(args.artifact_dir, check["artifact"])
    if not os.path.exists(art_path):
        return False, [f"artifact not found: {art_path}"], ("missing", "artifact present")
    art = load_json(art_path)

    if kind == "compare":
        base_path = os.path.join(args.baseline_dir, check["baseline"])
        if args.update_baselines:
            with open(art_path, "rb") as src, open(base_path, "wb") as dst:
                dst.write(src.read())
            return True, [f"baseline refreshed from {art_path}"], \
                ("refreshed", check["baseline"])
        if not os.path.exists(base_path):
            return False, [f"baseline not found: {base_path}"], \
                ("missing", "baseline present")
        base = load_json(base_path)
        opts = {
            "exact_leaves": set(check.get("exact_leaves", [])),
            "timing_subtrees": check.get("timing_subtrees", []),
            "num_rel_tol": check.get("num_rel_tol", args.num_rel_tol),
            "num_abs_tol": check.get("num_abs_tol", args.num_abs_tol),
            "max_errors": 20,
            "seen_exact": set(),
            "seen_timing": set(),
        }
        errors = []
        compare_trees(art, base, opts, "", errors)
        # A gate naming a metric that exists in NEITHER tree would otherwise
        # pass silently forever — e.g. after an artifact field is renamed but
        # the gate is not.  (Present-in-one-only is already a structural
        # error above.)  Make the dangling reference itself a hard failure.
        for leaf in sorted(opts["exact_leaves"] - opts["seen_exact"]):
            errors.append(
                f"gate error: exact_leaves entry '{leaf}' matches no leaf in "
                f"either artifact or baseline — remove it or fix the artifact"
            )
        for t in check.get("timing_subtrees", []):
            if t not in opts["seen_timing"]:
                errors.append(
                    f"gate error: timing_subtrees entry '{t}' matches no path "
                    f"in either artifact or baseline — remove it or fix the artifact"
                )
        bound = f"matches {check['baseline']}"
        if errors:
            return False, errors[:20], (f"{len(errors)}+ diffs", bound)
        return True, [f"matches {base_path}"], ("identical-within-tol", bound)

    if kind == "flag":
        value = dotted(art, check["path"])
        ok = value == check["expect"]
        return ok, [f"{check['path']} = {value} (expect {check['expect']})"], \
            (str(value), f"== {check['expect']}")

    if kind == "threshold":
        value = dotted(art, check["metric"])
        ok = True
        bounds = []
        if "min" in check:
            required = check["min"]
            note = ""
            scaled = check.get("cpu_scaled")
            if scaled:
                cpus = dotted(art, scaled["cpus_path"])
                required = min(scaled.get("cap", required), scaled["factor"] * cpus)
                note = f" (cpu-scaled: {cpus} cpus -> required {required:.2f})"
            ok = ok and value >= required
            bounds.append(f">= {required:.2f}{note}")
        if "max" in check:
            ok = ok and value <= check["max"]
            bounds.append(f"<= {check['max']:.2f}")
        if not bounds:
            return False, ["threshold check needs 'min' and/or 'max'"], \
                ("?", "min/max given")
        bound = " and ".join(bounds)
        return ok, [f"{check['metric']} = {value:.3f}, required {bound}"], \
            (f"{value:.3f}", bound)

    if kind == "ratio":
        num = bench_entry(art, check["numerator"])[check["field"]]
        den = bench_entry(art, check["denominator"])[check["field"]]
        ratio = num / den if den else float("inf")
        ok = ratio >= check["min"]
        return ok, [
            f"{check['numerator']} / {check['denominator']} "
            f"({check['field']}) = {ratio:.3f}, required >= {check['min']}"
        ], (f"{ratio:.3f}", f">= {check['min']}")

    return False, [f"unknown check type '{kind}'"], ("?", "known check type")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--gates", required=True, help="gates.json path")
    ap.add_argument("--artifact-dir", default=".", help="where fresh artifacts live")
    ap.add_argument("--baseline-dir", default=None,
                    help="committed baselines (default: directory of --gates)")
    ap.add_argument("--report", default="bench_diff_report.md")
    ap.add_argument("--markdown", default=None, metavar="PATH",
                    help="also write a one-row-per-gate summary table "
                         "(gate, value, bound, result) — the shape CI appends "
                         "to $GITHUB_STEP_SUMMARY")
    ap.add_argument("--num-rel-tol", type=float, default=0.35,
                    help="default relative tolerance for non-exact numbers")
    ap.add_argument("--num-abs-tol", type=float, default=0.1,
                    help="absolute tolerance floor for near-zero numbers")
    ap.add_argument("--update-baselines", action="store_true",
                    help="copy fresh artifacts over the baselines instead of diffing")
    args = ap.parse_args()
    if args.baseline_dir is None:
        args.baseline_dir = os.path.dirname(os.path.abspath(args.gates))

    gates = load_json(args.gates)
    lines = ["# Bench regression report", ""]
    rows = []
    failures = 0
    for check in gates["checks"]:
        try:
            ok, details, row = run_check(check, args)
        except Exception as e:  # malformed artifact counts as failure
            ok, details, row = False, [f"error: {e}"], ("error", "")
        status = "PASS" if ok else "FAIL"
        if not ok:
            failures += 1
        name = check.get("name", check["type"])
        rows.append((name, row[0], row[1], status))
        lines.append(f"## {status}: {name}")
        lines.extend(f"- {d}" for d in details)
        lines.append("")
        print(f"[{status}] {name}: {details[0]}")
        for d in details[1:]:
            print(f"         {d}")

    lines.append(f"**{len(gates['checks']) - failures}/{len(gates['checks'])} checks passed.**")
    with open(args.report, "w", encoding="utf-8") as f:
        f.write("\n".join(lines) + "\n")
    print(f"report written to {args.report}")

    if args.markdown:
        md = ["| gate | value | bound | result |", "|---|---|---|---|"]
        md.extend(f"| {n} | {v} | {b} | {s} |" for n, v, b, s in rows)
        md.append("")
        md.append(f"**{len(gates['checks']) - failures}/{len(gates['checks'])}"
                  " checks passed.**")
        with open(args.markdown, "w", encoding="utf-8") as f:
            f.write("\n".join(md) + "\n")
        print(f"gate table written to {args.markdown}")

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
