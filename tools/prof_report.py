#!/usr/bin/env python3
"""Render a human-readable hotspot report from a profiled telemetry export.

Input: a full telemetry JSON written with profiling enabled (e.g. the
TELEMETRY_fig3_prof.json companion artifact of bench_prof), whose "prof"
section carries the sampled attribution tree, exact per-site call counts,
event-queue occupancy, and per-region event density.  The optional
"flight" section (always present on instrumented runs) adds the black-box
ring summary.

Reading the numbers:
  - calls are exact (every site entry increments a flat counter);
  - est_ns = sampled_ns * stride estimates a tree node's total inclusive
    wall time (entries sample uniformly at 1/stride);
  - a site entered below an un-sampled ancestor appears both as a
    top-level node and as a child node — the per-site rollup merges the
    two, the tree view keeps them apart.

Usage:
  python3 tools/prof_report.py build/TELEMETRY_fig3_prof.json [--top N]
"""

import argparse
import json
import sys


def fmt_ns(ns):
    if ns >= 1e9:
        return f"{ns / 1e9:8.3f} s "
    if ns >= 1e6:
        return f"{ns / 1e6:8.3f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:8.3f} us"
    return f"{ns:8.0f} ns"


def bar(frac, width=24):
    n = int(round(frac * width))
    return "#" * n + "." * (width - n)


def leaf_site(path):
    return path.rsplit(".", 1)[-1]


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("export_json", help="full telemetry export with a prof section")
    ap.add_argument("--top", type=int, default=10, help="hotspot rows to show")
    args = ap.parse_args()

    with open(args.export_json, "r", encoding="utf-8") as f:
        doc = json.load(f)
    prof = doc.get("prof")
    if not prof:
        print(f"error: no 'prof' section in {args.export_json} — was the run "
              f"profiled (Profiler::Enable before attach) and exported with "
              f"include_prof?", file=sys.stderr)
        return 1

    stride = prof["stride"]
    tree = prof.get("tree", [])
    sites = {s["site"]: s["calls"] for s in prof.get("sites", [])}
    have_wall = any("est_ns" in n for n in tree)

    print(f"# Profiler report: {args.export_json}")
    print(f"stride {stride} (each sample stands for {stride} entries); "
          f"{len(tree)} tree nodes; "
          f"{sum(sites.values())} site entries recorded")
    if not have_wall:
        print("note: export omitted wall-clock fields (deterministic view); "
              "showing counts only")
    print()

    # ---- Per-site rollup: exact calls + merged est_ns across tree nodes ----
    rollup = {}
    for n in tree:
        s = leaf_site(n["path"])
        r = rollup.setdefault(s, {"samples": 0, "est_ns": 0.0})
        r["samples"] += n.get("samples", 0)
        r["est_ns"] += n.get("est_ns", 0) or 0
    for s, calls in sites.items():
        rollup.setdefault(s, {"samples": 0, "est_ns": 0.0})["calls"] = calls
    total_est = sum(r["est_ns"] for r in rollup.values()) or 1.0

    print("## Per-site rollup (merged across tree positions)")
    print(f"{'site':<16} {'calls':>12} {'samples':>9} {'est total':>12} "
          f"{'est/call':>10}  share")
    order = sorted(rollup.items(), key=lambda kv: -kv[1]["est_ns"])
    for s, r in order:
        calls = r.get("calls", 0)
        per = r["est_ns"] / calls if calls else 0.0
        print(f"{s:<16} {calls:>12} {r['samples']:>9} {fmt_ns(r['est_ns'])} "
              f"{per:>8.1f}ns  {bar(r['est_ns'] / total_est)}")
    print()

    # ---- Top-N hotspots by tree path (inclusive) ----
    print(f"## Top {args.top} hotspots (tree paths, inclusive est_ns)")
    hot = sorted(tree, key=lambda n: -(n.get("est_ns", 0) or 0))[: args.top]
    print(f"{'path':<44} {'samples':>9} {'est total':>12}  share")
    for n in hot:
        est = n.get("est_ns", 0) or 0
        print(f"{n['path']:<44} {n.get('samples', 0):>9} {fmt_ns(est)}  "
              f"{bar(est / total_est)}")
    print()

    # ---- Event-queue occupancy ----
    occ = prof.get("queue_occupancy", {})
    if occ.get("samples"):
        mean = occ.get("mean")
        mx = occ.get("max")
        print(f"## Event-queue occupancy: {occ['samples']} samples, "
              f"mean {mean:.1f}, max {mx:.0f} pending")
        print()

    # ---- Region event density (the sharding evidence) ----
    regions = prof.get("regions", [])
    if regions:
        total_ev = sum(r["events"] for r in regions) or 1
        print("## Region event density (per-hop deliveries by topology region)")
        print(f"{'region':>6} {'events':>12}  share   "
              f"peak-bin (of {regions[0].get('density_bin_s', 0.1):.1f}s bins, "
              f"1/{regions[0].get('density_stride', 1)} sampled)")
        for r in regions:
            dens = r.get("density", [])
            peak = max(range(len(dens)), key=dens.__getitem__) if dens else -1
            peak_txt = (f"bin {peak} (t≈{peak * r.get('density_bin_s', 0.1):.1f}s, "
                        f"{dens[peak]} sampled)" if peak >= 0 else "-")
            print(f"{r['region']:>6} {r['events']:>12}  "
                  f"{100 * r['events'] / total_ev:5.1f}%  {peak_txt}")
        print()

    # ---- Exporter self-measurement ----
    if have_wall and "export_ns" in prof:
        print(f"## Export serialization: {fmt_ns(prof['export_ns']).strip()} "
              f"(wall, non-prof sections)")
        print()

    # ---- Flight-recorder summary ----
    flight = doc.get("flight")
    if flight:
        counts = flight.get("counts", flight)
        print(f"## Flight recorder: {flight.get('total', '?')} records "
              f"(capacity {flight.get('capacity', '?')}, "
              f"overwritten {flight.get('overwritten', '?')})")
        if isinstance(counts, dict):
            kinds = {k: v for k, v in counts.items()
                     if isinstance(v, int) and v > 0 and k not in
                     ("total", "capacity", "overwritten", "dumps")}
            if kinds:
                for k, v in sorted(kinds.items(), key=lambda kv: -kv[1]):
                    print(f"  {k:<16} {v}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
